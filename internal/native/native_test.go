package native

import (
	"runtime"
	"testing"

	"parhask/internal/exec"
	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/fuzz"
	"parhask/internal/workloads/matmul"
)

// run is a test helper: execute main natively, failing the test on error.
func run(t *testing.T, cfg Config, main exec.Program) *Result {
	t.Helper()
	res, err := Run(cfg, main)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNativeSumEulerMatchesOracle(t *testing.T) {
	const n, chunks = 2000, 40
	want := euler.SumTotientSieve(n)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, eager := range []bool{true, false} {
			res := run(t, Config{Workers: workers, EagerBlackholing: eager},
				euler.Program(n, chunks, 0, true))
			if got := res.Value.(int64); got != want {
				t.Fatalf("workers=%d eager=%v: sum = %d, want %d", workers, eager, got, want)
			}
			if workers == 1 {
				continue
			}
			// Sanity on the counters: every chunk was sparked.
			if res.Stats.SparksCreated != int64(chunks) {
				t.Fatalf("workers=%d: sparks = %d, want %d", workers, res.Stats.SparksCreated, chunks)
			}
		}
	}
}

func TestNativeMatchesSimulatedRun(t *testing.T) {
	// The same program body, run on the simulated and the native runtime,
	// must produce the same value (the cross-runtime oracle).
	const n, chunks = 1500, 30
	simRes, err := gph.Run(gph.WorkStealingConfig(4), euler.GpHProgram(n, chunks, 14))
	if err != nil {
		t.Fatal(err)
	}
	natRes := run(t, NewConfig(4), euler.Program(n, chunks, 14, false))
	if simRes.Value.(int64) != natRes.Value.(int64) {
		t.Fatalf("sim = %d, native = %d", simRes.Value.(int64), natRes.Value.(int64))
	}
	if want := euler.SumTotientSieve(n); natRes.Value.(int64) != want {
		t.Fatalf("native = %d, sieve oracle = %d", natRes.Value.(int64), want)
	}
}

func TestNativeMatMulMatchesOracle(t *testing.T) {
	a, b := matmul.Random(64, 1), matmul.Random(64, 2)
	want := matmul.MulOracle(a, b)
	for _, workers := range []int{1, 4} {
		res := run(t, NewConfig(workers), matmul.BlockProgram(a, b, 16, 0))
		if !matmul.Equal(res.Value.(matmul.Mat), want, 1e-9) {
			t.Fatalf("workers=%d: native block matmul disagrees with oracle", workers)
		}
	}
	res := run(t, NewConfig(4), matmul.RowProgram(a, b, 0))
	if !matmul.Equal(res.Value.(matmul.Mat), want, 1e-9) {
		t.Fatal("native row matmul disagrees with oracle")
	}
}

func TestNativeAPSPBothPoliciesCorrect(t *testing.T) {
	// Correctness first: under both black-holing policies the APSP result
	// must equal Floyd–Warshall exactly — lazy duplication wastes work
	// but can never corrupt a value (referential transparency + atomic
	// publish).
	g := apsp.RandomGraph(48, 7, 100, 50)
	want := apsp.FloydWarshall(g)
	for _, eager := range []bool{true, false} {
		res := run(t, Config{Workers: 4, EagerBlackholing: eager}, apsp.Program(g, 0))
		if !apsp.Equal(res.Value.(apsp.Graph), want) {
			t.Fatalf("eager=%v: native APSP disagrees with Floyd–Warshall", eager)
		}
		if eager && res.Stats.DupEntries != 0 {
			t.Fatalf("eager black-holing must prevent duplicate entries, got %d", res.Stats.DupEntries)
		}
	}
}

func TestNativeAPSPLazyDuplicates(t *testing.T) {
	// The paper's §IV-A.3 effect on real cores: with lazy black-holing
	// the shared pivot thunks are entered concurrently and evaluation is
	// duplicated; the duplicates must be observable in the counters while
	// the result stays exact. Duplication is a race-window phenomenon, so
	// retry a few times before concluding anything.
	if runtime.NumCPU() < 4 {
		t.Skip("needs >= 4 CPUs to provoke concurrent thunk entry")
	}
	g := apsp.RandomGraph(64, 11, 100, 60)
	want := apsp.FloydWarshall(g)
	var dups int64
	for attempt := 0; attempt < 8 && dups == 0; attempt++ {
		res := run(t, Config{Workers: runtime.NumCPU(), EagerBlackholing: false}, apsp.Program(g, 0))
		if !apsp.Equal(res.Value.(apsp.Graph), want) {
			t.Fatal("lazy black-holing corrupted the APSP result")
		}
		dups += res.Stats.DupEntries
	}
	if dups == 0 {
		t.Skip("no duplicate entry provoked in 8 runs (machine too idle or too serial)")
	}
	t.Logf("lazy black-holing duplicated %d thunk entries (results exact)", dups)
}

func TestNativeFuzzCrossRuntime(t *testing.T) {
	// Satellite 3: the random thunk-DAG generator through the native
	// runtime must agree with the host-side reference evaluation for
	// every seed, worker count and black-holing policy.
	for seed := uint64(1); seed <= 12; seed++ {
		p := fuzz.Generate(seed, 80)
		want := p.Expected()
		for _, workers := range []int{1, 4, 8} {
			for _, eager := range []bool{true, false} {
				res := run(t, Config{Workers: workers, EagerBlackholing: eager}, p.Body())
				if got := res.Value.(int64); got != want {
					t.Fatalf("seed=%d workers=%d eager=%v: got %d, want %d",
						seed, workers, eager, got, want)
				}
			}
		}
	}
}

func TestNativeFuzzAgreesWithSimulation(t *testing.T) {
	// The same generated body on both runtimes.
	for seed := uint64(20); seed <= 24; seed++ {
		p := fuzz.Generate(seed, 60)
		simRes, err := gph.Run(gph.WorkStealingConfig(4), p.Main())
		if err != nil {
			t.Fatal(err)
		}
		natRes := run(t, NewConfig(4), p.Body())
		if simRes.Value.(int64) != natRes.Value.(int64) {
			t.Fatalf("seed=%d: sim = %d, native = %d", seed, simRes.Value, natRes.Value)
		}
	}
}

func TestNativeFork(t *testing.T) {
	// Fork runs bodies on real goroutines; a forked body communicates
	// through a thunk the main thread forces.
	res := run(t, NewConfig(4), func(ctx exec.Ctx) graph.Value {
		cell := graph.NewPlaceholder()
		exec.Fork(ctx, "producer", func(c exec.Ctx) {
			cell.Resolve(int64(41))
		})
		v := ctx.Force(cell).(int64)
		return v + 1
	})
	if res.Value.(int64) != 42 {
		t.Fatalf("got %v", res.Value)
	}
	if res.Stats.Forks != 1 {
		t.Fatalf("forks = %d", res.Stats.Forks)
	}
}

func TestNativeSparkPanicBecomesError(t *testing.T) {
	boom := exec.Thunk(func(c exec.Ctx) graph.Value { panic("boom") })
	_, err := Run(NewConfig(2), func(ctx exec.Ctx) graph.Value {
		ctx.Par(boom)
		return ctx.Force(boom)
	})
	if err == nil {
		t.Fatal("expected an error from the panicking spark")
	}
}

func TestNativeNilAndDudSparks(t *testing.T) {
	res := run(t, NewConfig(2), func(ctx exec.Ctx) graph.Value {
		ctx.Par(nil)
		ctx.Par(graph.NewValue(1))
		return int64(0)
	})
	if res.Stats.SparksDud != 2 {
		t.Fatalf("duds = %d, want 2", res.Stats.SparksDud)
	}
}

func TestNativeDefaultsToGOMAXPROCS(t *testing.T) {
	res := run(t, Config{EagerBlackholing: true}, func(ctx exec.Ctx) graph.Value {
		return int64(7)
	})
	if res.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers = %d, want GOMAXPROCS=%d", res.Workers, runtime.GOMAXPROCS(0))
	}
	if res.WallNS <= 0 {
		t.Fatal("wall-clock time must be positive")
	}
}

func TestNativeSumEulerSpeedup(t *testing.T) {
	// Acceptance: BenchmarkNativeSumEuler-style speedup check — with >=4
	// workers the wall clock must beat 1 worker by >1.5x on a multicore
	// machine. Skip (not fail) where the hardware cannot show it.
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skip("needs >= 4 CPUs for a meaningful speedup")
	}
	const n, chunks = 6000, 120
	want := euler.SumTotientSieve(n)
	best := func(workers int) int64 {
		bestNS := int64(1 << 62)
		for i := 0; i < 3; i++ {
			res := run(t, NewConfig(workers), euler.Program(n, chunks, 0, true))
			if res.Value.(int64) != want {
				t.Fatalf("workers=%d: wrong sum", workers)
			}
			if res.WallNS < bestNS {
				bestNS = res.WallNS
			}
		}
		return bestNS
	}
	seq := best(1)
	par := best(4)
	speedup := float64(seq) / float64(par)
	t.Logf("sumEuler n=%d: 1 worker %.1fms, 4 workers %.1fms, speedup %.2fx",
		n, float64(seq)/1e6, float64(par)/1e6, speedup)
	if speedup < 1.5 {
		t.Errorf("speedup = %.2fx, want > 1.5x on %d CPUs", speedup, runtime.NumCPU())
	}
}

// Interface checks: the same *rts.Ctx-based simulation satisfies the
// runtime-agnostic interface the native contexts implement.
var (
	_ exec.Ctx    = (*rts.Ctx)(nil)
	_ exec.Forker = (*Ctx)(nil)
)
