package native

import (
	"sync"

	"parhask/internal/metrics"
)

// poolMetrics wires a resident Pool into a metrics.Registry. Push
// series (histograms, fault counters) are recorded on the hot paths
// behind nil checks; pull series read from one collector-cached
// snapshot so an exposition costs a single Pool.Snapshot + Pool.GC,
// not one per series.
type poolMetrics struct {
	schedWait *metrics.Histogram // Submit → job goroutine running
	wallOK    *metrics.Histogram // job wall time, by outcome
	wallErr   *metrics.Histogram

	faultPanics *metrics.Counter
	faultStalls *metrics.Counter

	// snap/gc are refreshed once per exposition by the registry
	// collector; the CounterFunc/GaugeFunc closures read the cache.
	cache struct {
		mu   sync.Mutex
		snap Stats
		gc   GCStats
	}
}

func newPoolMetrics(reg *metrics.Registry, p *Pool) *poolMetrics {
	m := &poolMetrics{
		schedWait:   reg.Histogram("native_pool_sched_wait_seconds", "submit-to-start scheduling latency of resident jobs", 1e-9),
		faultPanics: reg.Counter("native_pool_fault_panics_total", "spark panics injected by the fault plane"),
		faultStalls: reg.Counter("native_pool_fault_stalls_total", "worker stalls injected by the fault plane"),
	}
	m.wallOK = reg.Histogram("native_pool_job_seconds", "wall-clock latency of resident jobs by outcome", 1e-9, "outcome", "ok")
	m.wallErr = reg.Histogram("native_pool_job_seconds", "wall-clock latency of resident jobs by outcome", 1e-9, "outcome", "error")
	reg.AddCollector(func() {
		snap := p.Snapshot()
		gc := p.GC()
		m.cache.mu.Lock()
		m.cache.snap = snap
		m.cache.gc = gc
		m.cache.mu.Unlock()
	})
	cached := func(read func() float64) func() float64 {
		return func() float64 {
			m.cache.mu.Lock()
			defer m.cache.mu.Unlock()
			return read()
		}
	}
	counter := func(name, help string, read func() int64) {
		reg.CounterFunc(name, help, cached(func() float64 { return float64(read()) }))
	}

	// Spark / steal / blocking rates: the paper's runtime counters as
	// live series, from the pool's monotone snapshot.
	counter("native_pool_sparks_created_total", "par calls that entered a spark pool", func() int64 { return m.cache.snap.SparksCreated })
	counter("native_pool_sparks_converted_total", "sparks picked up and forced by a worker", func() int64 { return m.cache.snap.SparksConverted })
	counter("native_pool_sparks_fizzled_total", "sparks picked up already evaluated", func() int64 { return m.cache.snap.SparksFizzled })
	counter("native_pool_sparks_dud_total", "par on an already-evaluated closure", func() int64 { return m.cache.snap.SparksDud })
	counter("native_pool_steals_total", "successful remote pool steals", func() int64 { return m.cache.snap.Steals })
	counter("native_pool_steal_attempts_total", "steals tried against a non-empty pool", func() int64 { return m.cache.snap.StealAttempts })
	counter("native_pool_dup_entries_total", "duplicate thunk entries (lazy black-holing)", func() int64 { return m.cache.snap.DupEntries })
	counter("native_pool_blocked_forces_total", "forces that found a black hole and waited", func() int64 { return m.cache.snap.BlockedForces })
	counter("native_pool_forks_total", "GpH threads created with Fork", func() int64 { return m.cache.snap.Forks })
	reg.GaugeFunc("native_pool_sparks_leftover", "sparks currently pooled awaiting a worker",
		cached(func() float64 { return float64(m.cache.snap.SparksLeftover) }))

	// Idle-wait telemetry: how much of the workers' time the backoff
	// ladder and the park lot absorbed (the autotune controller's
	// widen/narrow and park decisions act on these).
	counter("native_pool_backoff_sleeps_total", "idle-loop backoff sleeps taken by workers", func() int64 { return m.cache.snap.BackoffSleeps })
	reg.CounterFunc("native_pool_backoff_ns", "nanoseconds workers spent in backoff sleeps",
		cached(func() float64 { return float64(m.cache.snap.BackoffNS) }))
	counter("native_pool_parks_total", "times a worker parked on the pool condvar", func() int64 { return m.cache.snap.Parks })
	reg.CounterFunc("native_pool_parked_ns", "nanoseconds workers spent parked",
		cached(func() float64 { return float64(m.cache.snap.ParkedNS) }))
	reg.GaugeFunc("native_pool_parked_workers", "workers currently parked on the pool condvar",
		func() float64 { return float64(p.rt.nparked.Load()) })

	// GC deltas since the pool came up (gcscope window; Shared handled
	// by the boolean gauge rather than polluting the counters).
	counter("native_pool_gc_cycles_total", "GC cycles since the pool started", func() int64 { return m.cache.gc.Cycles })
	reg.CounterFunc("native_pool_gc_pause_seconds_total", "total stop-the-world pause since the pool started",
		cached(func() float64 { return float64(m.cache.gc.PauseNS) * 1e-9 }))
	counter("native_pool_gc_alloc_bytes_total", "heap bytes allocated since the pool started", func() int64 { return m.cache.gc.BytesAlloc })
	reg.GaugeFunc("native_pool_gc_shared", "1 when another measurement window overlapped the pool's gcscope window",
		cached(func() float64 {
			if m.cache.gc.Shared {
				return 1
			}
			return 0
		}))

	// Arena footprint from the workers' published atomics (the arena's
	// own counters are owner-written plain fields — racy to read live).
	reg.GaugeFunc("native_pool_arena_chunks", "thunk-arena chunks currently allocated across workers", func() float64 {
		var n int64
		for _, w := range p.rt.workers {
			n += w.pubArenaChunks.Load()
		}
		return float64(n)
	})
	reg.GaugeFunc("native_pool_arena_thunks", "thunks handed out of worker arenas", func() float64 {
		var n int64
		for _, w := range p.rt.workers {
			n += w.pubArenaThunks.Load()
		}
		return float64(n)
	})

	// Job lifecycle, straight off the pool's atomics (cheap enough to
	// read per-exposition without the cache).
	reg.CounterFunc("native_pool_jobs_total", "resident jobs retired by outcome",
		func() float64 { return float64(p.JobsDone()) }, "outcome", "ok")
	reg.CounterFunc("native_pool_jobs_total", "resident jobs retired by outcome",
		func() float64 { return float64(p.JobsFailed()) }, "outcome", "error")
	reg.GaugeFunc("native_pool_inflight_jobs", "jobs currently live in the pool",
		func() float64 { return float64(p.Inflight()) })
	reg.CounterFunc("native_pool_poisoned_claims_total", "thunk claims poisoned by dying threads",
		func() float64 { return float64(p.rt.poisoned.Load()) })
	reg.GaugeFunc("native_pool_uptime_seconds", "time since the pool came up",
		func() float64 { return p.Uptime().Seconds() })
	reg.GaugeFunc("native_pool_workers", "resident worker count",
		func() float64 { return float64(len(p.rt.workers)) })
	return m
}
