// Package cost centralises the virtual-time cost model of the simulation.
//
// Every constant is in virtual nanoseconds (or bytes where noted). The
// defaults are calibrated so that the sumEuler [1..15000] benchmark lands
// in the same range the paper reports on its 8-core Intel machine
// (sequential ≈ 17 s, 8-core parallel ≈ 2.2–2.8 s), and so that the
// relative magnitudes of scheduling, GC and messaging overheads match the
// systems the paper describes (GHC 6.8/6.9 runtime, PVM over shared
// memory). Absolute numbers are a model; the experiments in this repo
// reproduce the paper's *shapes* (who wins, by what factor, where the
// crossovers are), which are driven by the ratios between these costs.
package cost

// Model holds every tunable cost in one place. A Model value is plain
// data: copy it, tweak fields, and pass it to a runtime configuration.
type Model struct {
	// --- Mutator work ---

	// GCDIter is the cost of one iteration of the Euclid gcd loop
	// (sumEuler's inner kernel).
	GCDIter int64
	// MulAdd is the cost of one floating-point multiply-add with array
	// indexing (matrix multiplication kernel).
	MulAdd int64
	// MinPlus is the cost of one min/plus update (APSP kernel).
	MinPlus int64

	// --- Allocation & storage management ---

	// AllocBlock is the allocation quantum between heap checks: a thread
	// only looks at the GC flag every AllocBlock allocated bytes (GHC: 4 KB
	// blocks), which is why slowly-allocating threads delay the GC barrier.
	AllocBlock int64
	// HeapCheck is the cost of one heap-check (per allocated block).
	HeapCheck int64
	// AllocAreaDefault is the per-capability young-generation allocation
	// area (GHC -A default: 512 KB).
	AllocAreaDefault int64
	// AllocAreaBig is the enlarged allocation area used by the paper's
	// "big allocation area" configurations.
	AllocAreaBig int64

	// --- Garbage collection ---

	// GCFixed is the fixed cost of one collection (initiation, root
	// scanning, bookkeeping).
	GCFixed int64
	// GCPerLiveByte is the copying cost per live (surviving + resident)
	// byte per collection.
	GCPerLiveByte float64
	// SurvivalRate is the fraction of freshly allocated bytes assumed to
	// survive a young-generation collection (workloads may override).
	SurvivalRate float64
	// MajorGCEvery makes every k-th collection a major one that also
	// copies the resident (old-generation) data; young collections only
	// copy survivors of the allocation areas (GHC's generational
	// collector).
	MajorGCEvery int
	// ParGCBalance is the slowdown factor of the parallel collector
	// relative to perfect division of the copying work (load imbalance
	// between GC threads plus their synchronisation).
	ParGCBalance float64
	// LocalGCFixed is the fixed cost of one unsynchronised local
	// collection in the semi-distributed heap design (§VI future work):
	// no barrier, small root set.
	LocalGCFixed int64
	// OldSurvivalRate is the fraction of the promoted global heap that
	// survives a full collection in the semi-distributed design.
	OldSurvivalRate float64
	// BarrierPollInterval is the sleep quantum of the original polling
	// GC barrier: a capability that decides to block re-checks state only
	// this often (the OS-scheduling-quantum granularity of the old
	// yield/sleep loop). BarrierSpin is how long a waiting capability
	// spins before blocking: pauses shorter than the spin window are
	// absorbed, which is why the improved barrier gains little with
	// small allocation areas but a lot with large ones (the paper notes
	// the converse: "much more effect without the larger allocation
	// area" applies to the total, driven by GC count × per-GC cost).
	BarrierPollInterval int64
	BarrierSpin         int64
	// BarrierWake is the per-capability cost of the improved wakeup-based
	// barrier (one signal per capability).
	BarrierWake int64
	// GCHandshake is the per-capability fixed overhead paid on every
	// global stop-the-world synchronisation regardless of barrier kind.
	GCHandshake int64

	// --- Threads & scheduling ---

	// ThreadCreate is the cost of creating a (lightweight) Haskell thread.
	ThreadCreate int64
	// ContextSwitch is the cost of switching between threads on a
	// capability.
	ContextSwitch int64
	// Timeslice is the scheduler's round-robin quantum (GHC -C: 20 ms);
	// it is also when lazy black-holing marks thunks under evaluation.
	Timeslice int64

	// --- Sparks ---

	// SparkPush is the cost of par: pushing a spark onto the local pool.
	SparkPush int64
	// SparkPop is the cost of taking a spark from the local pool.
	SparkPop int64
	// StealAttempt is the cost of one (possibly failing) steal from a
	// remote spark pool (cross-core cache traffic).
	StealAttempt int64
	// PushWork is the per-item cost of the old scheduler-driven work
	// pushing (hand-shake with the target capability).
	PushWork int64
	// IdleBackoff is how long an idle capability sleeps between work-
	// finding rounds when nothing is available.
	IdleBackoff int64

	// --- Black-holing ---

	// BlackholeWrite is the cost of eagerly claiming a thunk on entry
	// (one CAS).
	BlackholeWrite int64
	// BlockOnBlackhole is the cost of suspending a thread that hit a
	// black hole, and WakeThread the cost of waking it when the value
	// arrives.
	BlockOnBlackhole int64
	WakeThread       int64

	// --- Eden / message passing (PVM over shared memory) ---

	// MsgLatency is the end-to-end latency of one message between PEs.
	MsgLatency int64
	// MsgJitter is the maximum extra (pseudo-random, seeded) latency
	// added per message; deliveries to one PE stay FIFO, as PVM/MPI
	// guarantee per pair. 0 disables jitter.
	MsgJitter int64
	// MsgFixed is the per-message CPU cost on each side (packet
	// assembly/dispatch), and MsgPerByte the per-byte pack/unpack cost
	// (paid once by the sender and once by the receiver).
	MsgFixed   int64
	MsgPerByte float64
	// ProcessCreate is the cost of instantiating a remote Eden process.
	ProcessCreate int64
	// ChanCreate is the cost of setting up one Eden channel.
	ChanCreate int64
}

// Default returns the calibrated default cost model.
func Default() Model {
	return Model{
		GCDIter: 18, // calibrated: sumEuler [1..15000] (975M gcd iterations) ≈ 17.5 s sequential
		MulAdd:  4,
		MinPlus: 5,

		AllocBlock:       4 * 1024,
		HeapCheck:        6,
		AllocAreaDefault: 512 * 1024,
		AllocAreaBig:     8 * 1024 * 1024,

		GCFixed:             60_000, // 60 µs
		GCPerLiveByte:       0.8,
		SurvivalRate:        0.04,
		MajorGCEvery:        20,
		ParGCBalance:        1.25,
		LocalGCFixed:        15_000, // 15 µs
		OldSurvivalRate:     0.35,
		BarrierPollInterval: 5_000_000, // 5 ms OS-quantum sleep blocks
		BarrierSpin:         500_000,   // 500 µs spin before blocking
		BarrierWake:         2_500,
		GCHandshake:         4_000,

		ThreadCreate:  1_200,
		ContextSwitch: 400,
		Timeslice:     20_000_000, // 20 ms

		SparkPush:    25,
		SparkPop:     25,
		StealAttempt: 180,
		PushWork:     1_500,
		IdleBackoff:  250_000, // 250 µs (old scheduler's polling cadence)

		BlackholeWrite:   35,
		BlockOnBlackhole: 900,
		WakeThread:       900,

		MsgLatency:    45_000, // 45 µs PVM-over-shm end to end
		MsgFixed:      9_000,
		MsgPerByte:    0.35,
		ProcessCreate: 250_000,
		ChanCreate:    3_000,
	}
}
