package cost

import "testing"

func TestDefaultsAreSane(t *testing.T) {
	m := Default()
	positives := map[string]int64{
		"GCDIter":             m.GCDIter,
		"MulAdd":              m.MulAdd,
		"MinPlus":             m.MinPlus,
		"AllocBlock":          m.AllocBlock,
		"HeapCheck":           m.HeapCheck,
		"AllocAreaDefault":    m.AllocAreaDefault,
		"AllocAreaBig":        m.AllocAreaBig,
		"GCFixed":             m.GCFixed,
		"BarrierPollInterval": m.BarrierPollInterval,
		"BarrierSpin":         m.BarrierSpin,
		"ThreadCreate":        m.ThreadCreate,
		"ContextSwitch":       m.ContextSwitch,
		"Timeslice":           m.Timeslice,
		"SparkPush":           m.SparkPush,
		"StealAttempt":        m.StealAttempt,
		"MsgLatency":          m.MsgLatency,
		"MsgFixed":            m.MsgFixed,
		"ProcessCreate":       m.ProcessCreate,
	}
	for name, v := range positives {
		if v <= 0 {
			t.Errorf("%s = %d, want > 0", name, v)
		}
	}
	if m.GCPerLiveByte <= 0 || m.MsgPerByte <= 0 {
		t.Error("per-byte costs must be positive")
	}
	if m.SurvivalRate <= 0 || m.SurvivalRate >= 1 {
		t.Errorf("SurvivalRate = %v, want in (0,1)", m.SurvivalRate)
	}
}

func TestStructuralRelations(t *testing.T) {
	m := Default()
	if m.AllocAreaBig <= m.AllocAreaDefault {
		t.Error("big allocation area must exceed the default")
	}
	if m.AllocBlock >= m.AllocAreaDefault {
		t.Error("the heap-check block must be smaller than the allocation area")
	}
	if m.BarrierSpin >= m.BarrierPollInterval {
		t.Error("the spin window must be shorter than the sleep quantum")
	}
	if m.Timeslice <= m.ContextSwitch {
		t.Error("timeslice must dwarf the context-switch cost")
	}
	if m.MajorGCEvery <= 1 {
		t.Error("major collections must be rarer than young ones")
	}
}

func TestModelIsPlainData(t *testing.T) {
	a := Default()
	b := a // copy
	b.GCDIter = 999
	if a.GCDIter == 999 {
		t.Fatal("copying a Model must not alias")
	}
}
