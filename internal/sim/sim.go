// Package sim implements a deterministic discrete-event simulation (DES)
// kernel with coroutine-style tasks.
//
// The kernel maintains a virtual clock (int64 nanoseconds) and an event
// queue ordered by (time, sequence number). Tasks are goroutines that run
// one at a time: exactly one task (or kernel callback) executes at any
// real instant, so simulated state needs no locking and every run of the
// same program is bit-for-bit reproducible. Virtual time intervals of
// different tasks still overlap freely, which is what models parallelism.
//
// Tasks yield to the kernel by advancing virtual time (Advance), parking
// (Park / SleepInterruptible) or finishing. Other tasks or timer callbacks
// wake parked tasks with Unpark.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time = int64

// event is a scheduled occurrence: either resuming a task or running a
// kernel callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	task *Task  // non-nil: resume this task
	gen  uint64 // task resume generation; stale events are skipped
	fn   func() // non-nil: kernel callback
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// taskState describes where a task is in its lifecycle.
type taskState int8

const (
	tsNew     taskState = iota // spawned, not yet started
	tsRunning                  // currently executing (has the ball)
	tsWaiting                  // waiting for a scheduled resume event
	tsParked                   // parked indefinitely (needs Unpark)
	tsDone                     // finished
)

func (s taskState) String() string {
	switch s {
	case tsNew:
		return "new"
	case tsRunning:
		return "running"
	case tsWaiting:
		return "waiting"
	case tsParked:
		return "parked"
	case tsDone:
		return "done"
	}
	return "?"
}

// Task is a simulated thread of control: a goroutine that runs only when
// the kernel hands it the ball, and always returns the ball by yielding.
type Task struct {
	sim    *Sim
	id     int
	name   string
	state  taskState
	gen    uint64 // bumped whenever a pending resume event is invalidated
	permit bool   // a buffered Unpark (LockSupport-style)
	woke   bool   // last sleep ended due to Unpark rather than timeout

	resume chan struct{} // kernel -> task handoff
}

// Sim is a deterministic discrete-event simulator.
type Sim struct {
	now    Time
	seq    uint64
	queue  eventQueue
	tasks  []*Task
	live   int   // tasks not yet done
	cur    *Task // task currently holding the ball (nil in kernel/callback)
	yield  chan struct{}
	rng    PRNG
	panicV interface{} // re-raised panic from a task
	halted bool
}

// New returns a fresh simulator. seed initialises the simulator's
// deterministic PRNG (used e.g. for work-stealing victim selection).
func New(seed uint64) *Sim {
	return &Sim{
		yield: make(chan struct{}),
		rng:   NewPRNG(seed),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's deterministic PRNG.
func (s *Sim) Rand() *PRNG { return &s.rng }

// Spawn creates a new task executing fn and schedules it to start at the
// current virtual time. It may be called from the kernel (before Run),
// from another task, or from a timer callback.
func (s *Sim) Spawn(name string, fn func(t *Task)) *Task {
	t := &Task{
		sim:    s,
		id:     len(s.tasks),
		name:   name,
		state:  tsNew,
		resume: make(chan struct{}),
	}
	s.tasks = append(s.tasks, t)
	s.live++
	go func() {
		<-t.resume // wait for the kernel to start us
		defer func() {
			if r := recover(); r != nil {
				s.panicV = fmt.Sprintf("task %q panicked: %v", t.name, r)
			}
			t.state = tsDone
			s.live--
			s.cur = nil
			s.yield <- struct{}{}
		}()
		fn(t)
	}()
	s.schedule(s.now, t)
	return t
}

// After schedules fn to run in kernel context at now+d. Callbacks must not
// block; they may Unpark tasks, Spawn tasks, and schedule further callbacks.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + d, seq: s.seq, fn: fn})
}

// schedule enqueues a resume event for t at time at, tagged with t's
// current generation.
func (s *Sim) schedule(at Time, t *Task) {
	s.seq++
	t.state = tsWaiting
	heap.Push(&s.queue, &event{at: at, seq: s.seq, task: t, gen: t.gen})
}

// Run executes events until the queue is empty or the simulation is
// halted. It returns an error if any task is still alive (parked forever)
// when the queue drains — a simulated deadlock — or if a task panicked.
func (s *Sim) Run() error {
	for len(s.queue) > 0 && !s.halted {
		ev := heap.Pop(&s.queue).(*event)
		if ev.at < s.now {
			panic("sim: time went backwards")
		}
		s.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		t := ev.task
		if t.gen != ev.gen || t.state == tsDone {
			continue // stale resume (cancelled sleep)
		}
		s.resumeTask(t)
		if s.panicV != nil {
			panic(s.panicV)
		}
	}
	if s.halted {
		return nil
	}
	if s.live > 0 {
		var stuck []string
		for _, t := range s.tasks {
			if t.state != tsDone {
				stuck = append(stuck, fmt.Sprintf("%s(%s)", t.name, t.state))
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("sim: deadlock at t=%d: %d task(s) never finished: %v", s.now, s.live, stuck)
	}
	return nil
}

// Halt stops the simulation after the current event completes. Pending
// events are discarded; Run returns nil.
func (s *Sim) Halt() { s.halted = true }

// resumeTask hands the ball to t and waits for it to yield back.
func (s *Sim) resumeTask(t *Task) {
	t.state = tsRunning
	s.cur = t
	t.resume <- struct{}{}
	<-s.yield
}

// yieldToKernel gives the ball back to the kernel and blocks until the
// kernel resumes this task.
func (t *Task) yieldToKernel() {
	s := t.sim
	s.cur = nil
	s.yield <- struct{}{}
	<-t.resume
	t.state = tsRunning
	s.cur = t
}

func (t *Task) mustHoldBall(op string) {
	if t.sim.cur != t {
		panic(fmt.Sprintf("sim: %s called on task %q which is not running", op, t.name))
	}
}

// Name returns the task's name (for traces and error messages).
func (t *Task) Name() string { return t.name }

// ID returns the task's creation index.
func (t *Task) ID() int { return t.id }

// Sim returns the simulator this task belongs to.
func (t *Task) Sim() *Sim { return t.sim }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.sim.now }

// Advance moves this task d nanoseconds forward in virtual time.
// Unparks arriving during an Advance are buffered as a permit for the
// next Park/SleepInterruptible; Advance itself always sleeps fully.
func (t *Task) Advance(d Time) {
	t.mustHoldBall("Advance")
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	if d == 0 {
		return
	}
	t.gen++
	t.sim.schedule(t.sim.now+d, t)
	t.yieldToKernel()
}

// Park suspends the task until another task or callback calls Unpark. If
// a permit is buffered (an earlier Unpark arrived while the task was not
// parked), Park consumes it and returns immediately without yielding time.
func (t *Task) Park() {
	t.mustHoldBall("Park")
	if t.permit {
		t.permit = false
		return
	}
	t.gen++
	t.state = tsParked
	t.yieldToKernel()
}

// SleepInterruptible parks for at most d nanoseconds. It returns true if
// it was woken early by Unpark, false if the full duration elapsed. A
// buffered permit makes it return true immediately.
func (t *Task) SleepInterruptible(d Time) (woken bool) {
	t.mustHoldBall("SleepInterruptible")
	if t.permit {
		t.permit = false
		return true
	}
	if d < 0 {
		d = 0
	}
	t.gen++
	t.woke = false
	t.sim.schedule(t.sim.now+d, t)
	t.state = tsParked // parked-with-timeout: Unpark may preempt the timer
	t.yieldToKernel()
	return t.woke
}

// Unpark wakes t if it is parked (scheduling its resumption at the
// caller's current virtual time); otherwise it buffers a permit so that
// t's next Park/SleepInterruptible returns immediately. Unpark of a
// finished task is a no-op. It may be called from any task or callback.
func (t *Task) Unpark() {
	s := t.sim
	switch t.state {
	case tsDone:
		return
	case tsParked:
		t.gen++ // invalidate a pending sleep timeout, if any
		t.woke = true
		s.schedule(s.now, t)
	default:
		t.permit = true
	}
}

// Parked reports whether the task is currently parked (with or without a
// timeout).
func (t *Task) Parked() bool { return t.state == tsParked }

// Done reports whether the task has finished.
func (t *Task) Done() bool { return t.state == tsDone }
