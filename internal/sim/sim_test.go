package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestAdvanceAccumulatesTime(t *testing.T) {
	s := New(1)
	var end Time
	s.Spawn("a", func(tk *Task) {
		tk.Advance(100)
		tk.Advance(250)
		end = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 350 {
		t.Fatalf("end = %d, want 350", end)
	}
	if s.Now() != 350 {
		t.Fatalf("sim now = %d, want 350", s.Now())
	}
}

func TestTasksOverlapInVirtualTime(t *testing.T) {
	// Two tasks each advancing 100ns "in parallel" finish at t=100, not 200.
	s := New(1)
	var ends []Time
	for i := 0; i < 2; i++ {
		s.Spawn(fmt.Sprintf("t%d", i), func(tk *Task) {
			tk.Advance(100)
			ends = append(ends, tk.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 2 || ends[0] != 100 || ends[1] != 100 {
		t.Fatalf("ends = %v, want [100 100]", ends)
	}
}

func TestEventOrderIsFIFOAtSameTime(t *testing.T) {
	s := New(1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(tk *Task) {
			order = append(order, name)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("order = %q, want abc", got)
	}
}

func TestParkUnpark(t *testing.T) {
	s := New(1)
	var wakeTime Time
	waiter := s.Spawn("waiter", func(tk *Task) {
		tk.Park()
		wakeTime = tk.Now()
	})
	s.Spawn("waker", func(tk *Task) {
		tk.Advance(500)
		waiter.Unpark()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime != 500 {
		t.Fatalf("wakeTime = %d, want 500", wakeTime)
	}
}

func TestUnparkBeforeParkBuffersPermit(t *testing.T) {
	s := New(1)
	var wakeTime Time
	var waiter *Task
	s.Spawn("waker", func(tk *Task) {
		waiter.Unpark() // waiter hasn't parked yet
	})
	waiter = s.Spawn("waiter", func(tk *Task) {
		tk.Advance(10)
		tk.Park() // consumes buffered permit, returns immediately
		wakeTime = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime != 10 {
		t.Fatalf("wakeTime = %d, want 10 (permit should be consumed without waiting)", wakeTime)
	}
}

func TestSleepInterruptibleTimesOut(t *testing.T) {
	s := New(1)
	var woken bool
	var at Time
	s.Spawn("sleeper", func(tk *Task) {
		woken = tk.SleepInterruptible(300)
		at = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken || at != 300 {
		t.Fatalf("woken=%v at=%d, want false at 300", woken, at)
	}
}

func TestSleepInterruptibleWoken(t *testing.T) {
	s := New(1)
	var woken bool
	var at Time
	sleeper := s.Spawn("sleeper", func(tk *Task) {
		woken = tk.SleepInterruptible(1000)
		at = tk.Now()
	})
	s.Spawn("waker", func(tk *Task) {
		tk.Advance(100)
		sleeper.Unpark()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken || at != 100 {
		t.Fatalf("woken=%v at=%d, want true at 100", woken, at)
	}
}

func TestSleepTimeoutCancelledAfterWake(t *testing.T) {
	// The stale timeout event must not resume the task a second time.
	s := New(1)
	var resumes int
	sleeper := s.Spawn("sleeper", func(tk *Task) {
		tk.SleepInterruptible(1000)
		resumes++
		tk.Park() // parks again; a stale timeout at t=1000 must not wake it
		resumes++
	})
	s.Spawn("waker", func(tk *Task) {
		tk.Advance(100)
		sleeper.Unpark()
		tk.Advance(2000)
		sleeper.Unpark()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if resumes != 2 {
		t.Fatalf("resumes = %d, want 2", resumes)
	}
}

func TestAfterCallback(t *testing.T) {
	s := New(1)
	var fired Time = -1
	s.After(400, func() { fired = s.Now() })
	s.Spawn("t", func(tk *Task) { tk.Advance(1000) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 400 {
		t.Fatalf("fired = %d, want 400", fired)
	}
}

func TestCallbackCanUnparkTask(t *testing.T) {
	s := New(1)
	var at Time
	waiter := s.Spawn("waiter", func(tk *Task) {
		tk.Park()
		at = tk.Now()
	})
	s.After(250, func() { waiter.Unpark() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 250 {
		t.Fatalf("at = %d, want 250", at)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(1)
	s.Spawn("stuck", func(tk *Task) { tk.Park() })
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock error", err)
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := New(1)
	steps := 0
	s.Spawn("looper", func(tk *Task) {
		for {
			tk.Advance(10)
			steps++
			if steps == 5 {
				tk.Sim().Halt()
				// keep looping; Halt must stop us anyway after we yield
			}
			if steps > 5 {
				t.Error("task ran after Halt")
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Fatalf("steps = %d, want 5", steps)
	}
}

func TestSpawnFromTask(t *testing.T) {
	s := New(1)
	var childEnd Time
	s.Spawn("parent", func(tk *Task) {
		tk.Advance(50)
		tk.Sim().Spawn("child", func(c *Task) {
			c.Advance(25)
			childEnd = c.Now()
		})
		tk.Advance(100)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != 75 {
		t.Fatalf("childEnd = %d, want 75", childEnd)
	}
}

func TestTaskPanicPropagates(t *testing.T) {
	s := New(1)
	s.Spawn("boom", func(tk *Task) { panic("kaboom") })
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "kaboom") {
			t.Fatalf("recover = %v, want panic containing kaboom", r)
		}
	}()
	_ = s.Run()
	t.Fatal("Run returned without panicking")
}

func TestDeterminismManyTasks(t *testing.T) {
	run := func() []string {
		s := New(42)
		var log []string
		for i := 0; i < 8; i++ {
			i := i
			s.Spawn(fmt.Sprintf("t%d", i), func(tk *Task) {
				for j := 0; j < 20; j++ {
					d := Time(tk.Sim().Rand().Intn(50) + 1)
					tk.Advance(d)
					log = append(log, fmt.Sprintf("%d@%d", i, tk.Now()))
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestAdvanceBuffersUnparkAsPermit(t *testing.T) {
	s := New(1)
	var at Time
	sleeper := s.Spawn("sleeper", func(tk *Task) {
		tk.Advance(100) // Unpark arrives during this; must be buffered
		tk.Park()       // must consume the permit instantly
		at = tk.Now()
	})
	s.Spawn("waker", func(tk *Task) {
		tk.Advance(50)
		sleeper.Unpark()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Fatalf("at = %d, want 100", at)
	}
}

func TestPRNGIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%31) + 1
		p := NewPRNG(seed)
		for i := 0; i < 100; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPRNGDeterministic(t *testing.T) {
	a, b := NewPRNG(7), NewPRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("PRNG streams diverge")
		}
	}
}

func TestZeroAdvanceKeepsBall(t *testing.T) {
	s := New(1)
	order := []string{}
	s.Spawn("a", func(tk *Task) {
		tk.Advance(0)
		order = append(order, "a")
	})
	s.Spawn("b", func(tk *Task) {
		order = append(order, "b")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// a spawned first, Advance(0) must not reorder it behind b.
	if strings.Join(order, "") != "ab" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}
