package sim

// PRNG is a small deterministic pseudo-random number generator
// (SplitMix64). The simulator carries one so that randomised policies —
// such as work-stealing victim selection — are reproducible across runs.
type PRNG struct {
	state uint64
}

// NewPRNG returns a PRNG seeded with seed.
func NewPRNG(seed uint64) PRNG {
	return PRNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (p *PRNG) Uint64() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}
