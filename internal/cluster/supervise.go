package cluster

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"parhask/internal/faults"
)

// Restart is the supervision policy RunSupervised applies when a
// cluster attempt fails with a process death: respawn the workers and
// restart the whole SPMD run. Full-run retry is the honest recovery
// unit here — the runtime's deterministic shadow-root replay means a
// restarted run recomputes exactly the same result, whereas resurrecting
// a single rank mid-run would need distributed checkpointing the paper's
// systems never had.
type Restart struct {
	// Max is how many restarts may follow the initial attempt (so the
	// run executes at most Max+1 times).
	Max int
	// Backoff is the sleep before the first restart, doubling per
	// attempt up to Cap. Zero means 100ms (and a zero Cap means 5s).
	Backoff time.Duration
	Cap     time.Duration
	// RetryDeadlocks extends the policy to *faults.DeadlockError —
	// useful under chaos plans whose injected wedges surface as
	// deadline expiry rather than process death.
	RetryDeadlocks bool
}

// Attempt records one failed attempt of a supervised run.
type Attempt struct {
	// Attempt is the zero-based index of the failed attempt.
	Attempt int `json:"attempt"`
	// Rank is the rank whose death failed the attempt (-1 for a
	// cluster-wide failure such as a deadline deadlock).
	Rank int `json:"rank"`
	// Reason is the structured death reason ("exit", "connection
	// closed", "heartbeat timeout", ...).
	Reason string `json:"reason"`
	// Err is the full error text.
	Err string `json:"err"`
	// WallNS is how long the attempt ran before failing; BackoffNS the
	// sleep that preceded the next attempt.
	WallNS    int64 `json:"wall_ns"`
	BackoffNS int64 `json:"backoff_ns"`
}

// RestartsExhaustedError reports a supervised run that failed every
// attempt its restart budget allowed. Unwrap exposes the last
// attempt's error, so errors.As still finds the underlying
// *faults.ProcessDeathError (or DeadlockError).
type RestartsExhaustedError struct {
	Attempts []Attempt
	Last     error
}

func (e *RestartsExhaustedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: restart budget exhausted after %d attempts", len(e.Attempts))
	for _, a := range e.Attempts {
		fmt.Fprintf(&b, "\n  attempt %d: rank %d: %s (%v)", a.Attempt, a.Rank, a.Reason, time.Duration(a.WallNS))
	}
	fmt.Fprintf(&b, "\n  last error: %v", e.Last)
	return b.String()
}

func (e *RestartsExhaustedError) Unwrap() error { return e.Last }

// RunSupervised runs the cluster under cfg.Restart: a failed attempt
// whose error is retriable (process death; deadlock too when
// RetryDeadlocks) is retried after an exponential backoff, with the
// fault seed rotated per attempt so a seed-dependent injected fault
// does not recur identically. On success the Result carries the
// restart history and recovery latency; on a spent budget the error is
// a *RestartsExhaustedError wrapping the last failure. With a nil
// Restart it is exactly Run.
func RunSupervised(cfg Config) (*Result, error) {
	if cfg.Restart == nil {
		return Run(cfg)
	}
	pol := *cfg.Restart
	backoff := pol.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	cap := pol.Cap
	if cap <= 0 {
		cap = 5 * time.Second
	}
	var attempts []Attempt
	var firstFail time.Time
	for attempt := 0; ; attempt++ {
		began := time.Now()
		res, err := runAttempt(cfg, attempt)
		if err == nil {
			if res != nil {
				res.Restarts = len(attempts)
				res.Attempts = attempts
				if !firstFail.IsZero() {
					res.RecoveryNS = time.Since(firstFail).Nanoseconds()
				}
				if cfg.Metrics != nil && len(attempts) > 0 {
					cfg.Metrics.Counter("cluster_restarts_total", "supervised full-run restarts").
						Add(int64(len(attempts)))
					cfg.Metrics.Histogram("cluster_recovery_seconds", "first failure to recovered result", 1e-9).
						Observe(res.RecoveryNS)
				}
			}
			return res, nil
		}
		rank, reason, retriable := classifyFailure(err, pol.RetryDeadlocks)
		if !retriable {
			return res, err
		}
		if firstFail.IsZero() {
			firstFail = began
		}
		a := Attempt{
			Attempt: attempt, Rank: rank, Reason: reason, Err: err.Error(),
			WallNS: time.Since(began).Nanoseconds(),
		}
		if attempt >= pol.Max {
			attempts = append(attempts, a)
			return res, &RestartsExhaustedError{Attempts: attempts, Last: err}
		}
		a.BackoffNS = backoff.Nanoseconds()
		attempts = append(attempts, a)
		time.Sleep(backoff)
		if backoff *= 2; backoff > cap {
			backoff = cap
		}
	}
}

// classifyFailure decides whether a failed attempt is worth retrying
// and extracts its structured identity for the attempt history.
func classifyFailure(err error, retryDeadlocks bool) (rank int, reason string, retriable bool) {
	var pd *faults.ProcessDeathError
	if errors.As(err, &pd) {
		return pd.Rank, pd.Reason, true
	}
	var de *faults.DeadlockError
	if errors.As(err, &de) {
		return -1, "deadlock:" + de.Reason, retryDeadlocks
	}
	return -1, "", false
}
