// Package cluster runs the native Eden runtime as a real multi-process
// cluster: a coordinator process launches one worker process per rank
// (re-executing its own binary with a worker environment), the workers
// run the SPMD program over nativeeden's cluster mode, and every
// cross-process Eden message travels as wire-codec bytes through a
// star topology — each worker holds one TCP or Unix-socket connection
// to the coordinator, which routes data frames by destination PE. The
// paper's PVM daemons motivated the same shape: one well-known relay
// beats N² mutual connections for small clusters, and it gives the
// coordinator the vantage point to fold statistics, merge per-PE
// timelines, and turn a dead worker or severed link into a structured
// *faults.ProcessDeathError instead of a hang.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"parhask/internal/nativeeden"
)

// Frame kinds. Every frame on a cluster connection is
// [u32 length][u8 kind][body], length covering kind+body.
const (
	// frameHello (worker -> coordinator): body = u32 rank. First frame
	// on every connection, binding it to a rank.
	frameHello byte = 1 + iota
	// frameGo (coordinator -> worker): empty body; start the run.
	frameGo
	// frameData (both directions): one Eden message. Body layout is
	// [u8 MsgKind][i64 chan][i32 src][i32 dst][payload]; the payload is
	// the wire-codec encoding whose length equals eden.SizeOfChecked.
	frameData
	// frameResult (rank 0 -> coordinator): body = wire-encoded root value.
	frameResult
	// frameError (worker -> coordinator): body = error text; the run
	// failed on that worker.
	frameError
	// frameDrain (coordinator -> worker): empty body; the root's result
	// is in, unwind and report.
	frameDrain
	// frameReport (worker -> coordinator): body = JSON workerReport
	// (stats, eventlog dump).
	frameReport
	// frameBye (worker -> coordinator): empty body; clean goodbye.
	frameBye
)

// maxFrame bounds a frame body; a length beyond it means a corrupt or
// hostile stream, not a big message.
const maxFrame = 1 << 30

// conn is one framed cluster connection: buffered reads on the caller's
// goroutine, mutex-serialised writes from any goroutine.
type conn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader
	wm sync.Mutex
}

func newConn(rw io.ReadWriteCloser) *conn {
	return &conn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16)}
}

func (c *conn) Close() error { return c.rw.Close() }

// write sends one frame; safe for concurrent use.
func (c *conn) write(kind byte, body []byte) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = kind
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := c.rw.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// read returns the next frame. Only the owning reader goroutine calls
// it.
func (c *conn) read() (byte, []byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(c.br, lenb[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame length %d outside (0,%d]", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// dataHeaderLen is the fixed prefix of a frameData body.
const dataHeaderLen = 1 + 8 + 4 + 4

// encodeData builds a frameData body around payload.
func encodeData(kind nativeeden.MsgKind, chanID int64, src, dst int, payload []byte) []byte {
	b := make([]byte, dataHeaderLen+len(payload))
	b[0] = byte(kind)
	binary.LittleEndian.PutUint64(b[1:9], uint64(chanID))
	binary.LittleEndian.PutUint32(b[9:13], uint32(src))
	binary.LittleEndian.PutUint32(b[13:17], uint32(dst))
	copy(b[dataHeaderLen:], payload)
	return b
}

// decodeData splits a frameData body. The payload aliases b.
func decodeData(b []byte) (kind nativeeden.MsgKind, chanID int64, src, dst int, payload []byte, err error) {
	if len(b) < dataHeaderLen {
		return 0, 0, 0, 0, nil, fmt.Errorf("cluster: data frame %d bytes, need at least %d", len(b), dataHeaderLen)
	}
	kind = nativeeden.MsgKind(b[0])
	chanID = int64(binary.LittleEndian.Uint64(b[1:9]))
	src = int(int32(binary.LittleEndian.Uint32(b[9:13])))
	dst = int(int32(binary.LittleEndian.Uint32(b[13:17])))
	return kind, chanID, src, dst, b[dataHeaderLen:], nil
}
