// Package cluster runs the native Eden runtime as a real multi-process
// cluster: a coordinator process launches one worker process per rank
// (re-executing its own binary with a worker environment), the workers
// run the SPMD program over nativeeden's cluster mode, and every
// cross-process Eden message travels as wire-codec bytes through a
// star topology — each worker holds one TCP or Unix-socket connection
// to the coordinator, which routes data frames by destination PE. The
// paper's PVM daemons motivated the same shape: one well-known relay
// beats N² mutual connections for small clusters, and it gives the
// coordinator the vantage point to fold statistics, merge per-PE
// timelines, and turn a dead worker or severed link into a structured
// *faults.ProcessDeathError instead of a hang.
//
// The protocol is self-healing: the coordinator pings every worker
// (framePing/framePong) so a wedged worker is distinguishable from a
// slow one, a worker whose connection breaks redials with backoff and
// re-HELLOs, and the payload-bearing frames carry per-link sequence
// numbers with cumulative acks so a reconnect replays exactly the
// frames the other side never processed — no loss, no duplicates.
// RunSupervised adds the outer recovery loop: a rank that actually
// dies is respawned by restarting the whole SPMD run (deterministic
// shadow-root replay makes full-run retry the honest recovery unit).
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"parhask/internal/nativeeden"
)

// Frame kinds. Every frame on a cluster connection is
// [u32 length][u8 kind][u32 seq][body], length covering kind+seq+body.
// seq is zero on the meta frames and a per-link, per-direction
// sequence number (1, 2, ...) on the payload frames — see sequenced.
const (
	// frameHello (worker -> coordinator): body =
	// [u32 rank][u8 flags][u32 lastRecvSeq]. First frame on every
	// connection, binding it to a rank; helloFlagReconnect marks a
	// redial after a link failure, and lastRecvSeq tells the
	// coordinator which of its frames the worker has already processed
	// (so replay starts exactly after it).
	frameHello byte = 1 + iota
	// frameGo (coordinator -> worker): empty body; start the run.
	frameGo
	// frameData (both directions): one Eden message. Body layout is
	// [u8 MsgKind][i64 chan][i32 src][i32 dst][payload]; the payload is
	// the wire-codec encoding whose length equals eden.SizeOfChecked.
	frameData
	// frameResult (rank 0 -> coordinator): body = wire-encoded root value.
	frameResult
	// frameError (worker -> coordinator): body = JSON wireError (see
	// errors.go); the run failed on that worker. The envelope carries a
	// type tag so structured failures survive the process boundary.
	frameError
	// frameDrain (coordinator -> worker): empty body; the root's result
	// is in, unwind and report.
	frameDrain
	// frameReport (worker -> coordinator): body = JSON workerReport
	// (stats, eventlog dump).
	frameReport
	// frameBye (worker -> coordinator): empty body; clean goodbye.
	frameBye
	// framePing (coordinator -> worker): body = [i64 send-nanos]
	// [u32 ackSeq]. Liveness probe; ackSeq is the coordinator's
	// cumulative ack of the worker's sequenced frames.
	framePing
	// framePong (worker -> coordinator): body echoes the ping's nanos
	// and carries the worker's own cumulative ack.
	framePong
	// frameAck (both directions): body = [u32 seq], a cumulative ack
	// sent every ackEvery sequenced frames so retransmit buffers stay
	// bounded between heartbeats.
	frameAck
	// frameWelcome (coordinator -> worker): body = [u32 lastRecvSeq],
	// the coordinator's answer to a reconnect HELLO. It is the first
	// frame on the new connection; the worker trims its retransmit
	// buffer to it and replays the rest before resuming.
	frameWelcome
)

// helloFlagReconnect marks a HELLO from a worker redialling after a
// link failure rather than joining the run.
const helloFlagReconnect = 1

// helloLen is the fixed HELLO body size: rank, flags, lastRecvSeq.
const helloLen = 4 + 1 + 4

// sequenced reports whether a frame kind carries a per-link sequence
// number and therefore participates in ack/replay. The meta frames
// (hello, go, ping/pong, ack, welcome) are connection-scoped and never
// replayed.
func sequenced(kind byte) bool {
	switch kind {
	case frameData, frameResult, frameError, frameDrain, frameReport, frameBye:
		return true
	}
	return false
}

// ackEvery is how many sequenced frames a receiver lets accumulate
// before sending an explicit cumulative ack (heartbeats piggyback acks
// too, this just bounds the retransmit buffers under bursts).
const ackEvery = 32

// maxFrame bounds a frame body; a length beyond it means a corrupt or
// hostile stream, not a big message.
const maxFrame = 1 << 30

// frameHeaderLen is the post-length fixed prefix: kind byte + seq u32.
const frameHeaderLen = 1 + 4

// conn is one framed cluster connection: buffered reads on the caller's
// goroutine, mutex-serialised writes from any goroutine.
type conn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader
	wm sync.Mutex
}

func newConn(rw io.ReadWriteCloser) *conn {
	return &conn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16)}
}

func (c *conn) Close() error { return c.rw.Close() }

// write sends one frame; safe for concurrent use.
func (c *conn) write(kind byte, seq uint32, body []byte) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	var hdr [4 + frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(frameHeaderLen+len(body)))
	hdr[4] = kind
	binary.LittleEndian.PutUint32(hdr[5:9], seq)
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := c.rw.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// read returns the next frame. Only the owning reader goroutine calls
// it. A malformed length fails structurally — callers treat any error
// as a broken link, never as something to wait out.
func (c *conn) read() (byte, uint32, []byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(c.br, lenb[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < frameHeaderLen || n > maxFrame {
		return 0, 0, nil, fmt.Errorf("cluster: frame length %d outside [%d,%d]", n, frameHeaderLen, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return 0, 0, nil, err
	}
	return buf[0], binary.LittleEndian.Uint32(buf[1:5]), buf[frameHeaderLen:], nil
}

// savedFrame is one sent-but-unacked sequenced frame held for replay
// after a reconnect.
type savedFrame struct {
	seq  uint32
	kind byte
	body []byte
}

// trimAcked drops the prefix of buf cumulatively acked by seq.
func trimAcked(buf []savedFrame, seq uint32) []savedFrame {
	i := 0
	for i < len(buf) && buf[i].seq <= seq {
		i++
	}
	if i == 0 {
		return buf
	}
	return append(buf[:0], buf[i:]...)
}

// encodeHello builds a HELLO body.
func encodeHello(rank int, flags byte, lastRecv uint32) []byte {
	b := make([]byte, helloLen)
	binary.LittleEndian.PutUint32(b[:4], uint32(rank))
	b[4] = flags
	binary.LittleEndian.PutUint32(b[5:9], lastRecv)
	return b
}

// decodeHello splits a HELLO body.
func decodeHello(b []byte) (rank int, flags byte, lastRecv uint32, err error) {
	if len(b) != helloLen {
		return 0, 0, 0, fmt.Errorf("cluster: hello body %d bytes, want %d", len(b), helloLen)
	}
	return int(int32(binary.LittleEndian.Uint32(b[:4]))), b[4], binary.LittleEndian.Uint32(b[5:9]), nil
}

// encodeSeq packs the single-u32 bodies (frameAck, frameWelcome).
func encodeSeq(seq uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], seq)
	return b[:]
}

// decodeSeq unpacks a single-u32 body, tolerating nothing else.
func decodeSeq(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("cluster: seq body %d bytes, want 4", len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

// pingLen is the ping/pong body size: send-nanos + cumulative ack.
const pingLen = 8 + 4

// encodePing packs a ping/pong body.
func encodePing(nanos int64, ack uint32) []byte {
	b := make([]byte, pingLen)
	binary.LittleEndian.PutUint64(b[:8], uint64(nanos))
	binary.LittleEndian.PutUint32(b[8:12], ack)
	return b
}

// decodePing unpacks a ping/pong body.
func decodePing(b []byte) (nanos int64, ack uint32, err error) {
	if len(b) != pingLen {
		return 0, 0, fmt.Errorf("cluster: ping body %d bytes, want %d", len(b), pingLen)
	}
	return int64(binary.LittleEndian.Uint64(b[:8])), binary.LittleEndian.Uint32(b[8:12]), nil
}

// dataHeaderLen is the fixed prefix of a frameData body.
const dataHeaderLen = 1 + 8 + 4 + 4

// encodeData builds a frameData body around payload.
func encodeData(kind nativeeden.MsgKind, chanID int64, src, dst int, payload []byte) []byte {
	b := make([]byte, dataHeaderLen+len(payload))
	b[0] = byte(kind)
	binary.LittleEndian.PutUint64(b[1:9], uint64(chanID))
	binary.LittleEndian.PutUint32(b[9:13], uint32(src))
	binary.LittleEndian.PutUint32(b[13:17], uint32(dst))
	copy(b[dataHeaderLen:], payload)
	return b
}

// decodeData splits a frameData body. The payload aliases b.
func decodeData(b []byte) (kind nativeeden.MsgKind, chanID int64, src, dst int, payload []byte, err error) {
	if len(b) < dataHeaderLen {
		return 0, 0, 0, 0, nil, fmt.Errorf("cluster: data frame %d bytes, need at least %d", len(b), dataHeaderLen)
	}
	kind = nativeeden.MsgKind(b[0])
	chanID = int64(binary.LittleEndian.Uint64(b[1:9]))
	src = int(int32(binary.LittleEndian.Uint32(b[9:13])))
	dst = int(int32(binary.LittleEndian.Uint32(b[13:17])))
	return kind, chanID, src, dst, b[dataHeaderLen:], nil
}
