package cluster

import (
	"encoding/json"
	"errors"
	"fmt"

	"parhask/internal/eden"
	"parhask/internal/faults"
	"parhask/internal/graph"
)

// A worker that fails mid-run must not flatten its failure to text:
// the coordinator's caller (and serve.Classify-style taxonomies) keys
// on the structured error types — *faults.DeadlockError, an injected
// panic, an Eden misuse — and errors.As must keep working across the
// process boundary. frameError therefore carries a small JSON envelope
// with a type tag and the typed error's exported fields; the
// coordinator rebuilds the typed value and wraps it so both the full
// original text and the type survive.

// wireError is the frameError body: the failure's full text plus a
// typed core when the error matches one of the known structured
// classes.
type wireError struct {
	// Type tags the core: "deadlock", "injected-panic", "process-death",
	// "send", "chan-misuse", "poison", or "text" when the failure
	// matched no structured class.
	Type string `json:"type"`
	// Text is the complete error text, context wrapping included.
	Text string `json:"text"`
	// Data is the typed core's exported fields, keyed by Type.
	Data json.RawMessage `json:"data,omitempty"`
}

// The per-type DTOs. Nested error values (SendError.Err,
// PoisonError.Err) cross as text: their type information is secondary
// — what the taxonomy keys on is the outer class.
type wireSendError struct {
	Op   string `json:"op"`
	Chan int64  `json:"chan"`
	PE   int    `json:"pe"`
	Dest int    `json:"dest"`
	Err  string `json:"err"`
}

type wirePoisonError struct {
	Err string `json:"err"`
}

type wireDeathError struct {
	Rank   int    `json:"rank"`
	PEs    []int  `json:"pes,omitempty"`
	Reason string `json:"reason"`
	Err    string `json:"err,omitempty"`
}

// encodeWorkerError builds the frameError body for a worker-side run
// failure. It never fails: an unmarshalable core degrades to the
// "text" envelope, never to a lost error.
func encodeWorkerError(err error) []byte {
	env := wireError{Type: "text", Text: err.Error()}
	var (
		de *faults.DeadlockError
		ip *faults.InjectedPanic
		pd *faults.ProcessDeathError
		se *eden.SendError
		cm *eden.ChanMisuseError
		pe *graph.PoisonError
	)
	var core any
	switch {
	case errors.As(err, &de):
		env.Type, core = "deadlock", de
	case errors.As(err, &ip):
		env.Type, core = "injected-panic", ip
	case errors.As(err, &pd):
		env.Type = "process-death"
		w := wireDeathError{Rank: pd.Rank, PEs: pd.PEs, Reason: pd.Reason}
		if pd.Err != nil {
			w.Err = pd.Err.Error()
		}
		core = w
	case errors.As(err, &se):
		env.Type = "send"
		w := wireSendError{Op: se.Op, Chan: se.Chan, PE: se.PE, Dest: se.Dest}
		if se.Err != nil {
			w.Err = se.Err.Error()
		}
		core = w
	case errors.As(err, &cm):
		env.Type, core = "chan-misuse", cm
	case errors.As(err, &pe):
		env.Type, core = "poison", wirePoisonError{Err: pe.Err.Error()}
	}
	if core != nil {
		if data, jerr := json.Marshal(core); jerr == nil {
			env.Data = data
		} else {
			env.Type = "text"
		}
	}
	body, jerr := json.Marshal(&env)
	if jerr != nil {
		quoted, _ := json.Marshal(err.Error())
		return []byte(`{"type":"text","text":` + string(quoted) + `}`)
	}
	return body
}

// workerError is the coordinator-side reconstruction: full original
// text in Error(), typed core via Unwrap so errors.As and
// faults.IsStructured keep working.
type workerError struct {
	rank int
	text string
	core error
}

func (e *workerError) Error() string {
	return fmt.Sprintf("cluster: rank %d failed: %s", e.rank, e.text)
}

func (e *workerError) Unwrap() error { return e.core }

// decodeWorkerError rebuilds a worker's failure from a frameError
// body. Pre-envelope peers and corrupt bodies degrade to the raw
// bytes as text — an unreadable failure is still a failure.
func decodeWorkerError(rank int, body []byte) error {
	var env wireError
	if err := json.Unmarshal(body, &env); err != nil || env.Text == "" {
		return &workerError{rank: rank, text: string(body)}
	}
	we := &workerError{rank: rank, text: env.Text}
	switch env.Type {
	case "deadlock":
		var de faults.DeadlockError
		if json.Unmarshal(env.Data, &de) == nil {
			we.core = &de
		}
	case "injected-panic":
		var ip faults.InjectedPanic
		if json.Unmarshal(env.Data, &ip) == nil {
			we.core = &ip
		}
	case "process-death":
		var w wireDeathError
		if json.Unmarshal(env.Data, &w) == nil {
			pd := &faults.ProcessDeathError{Rank: w.Rank, PEs: w.PEs, Reason: w.Reason}
			if w.Err != "" {
				pd.Err = errors.New(w.Err)
			}
			we.core = pd
		}
	case "send":
		var w wireSendError
		if json.Unmarshal(env.Data, &w) == nil {
			se := &eden.SendError{Op: w.Op, Chan: w.Chan, PE: w.PE, Dest: w.Dest}
			if w.Err != "" {
				se.Err = errors.New(w.Err)
			}
			we.core = se
		}
	case "chan-misuse":
		var cm eden.ChanMisuseError
		if json.Unmarshal(env.Data, &cm) == nil {
			we.core = &cm
		}
	case "poison":
		var w wirePoisonError
		if json.Unmarshal(env.Data, &w) == nil {
			we.core = &graph.PoisonError{Err: errors.New(w.Err)}
		}
	}
	return we
}
