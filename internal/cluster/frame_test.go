package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// rwc adapts a bytes.Buffer into the io.ReadWriteCloser a conn wants,
// so corrupt byte streams can be fed to the reader directly.
type rwc struct {
	bytes.Buffer
}

func (r *rwc) Close() error { return nil }

func readerOver(raw []byte) *conn {
	b := &rwc{}
	b.Write(raw)
	return newConn(b)
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := newConn(a), newConn(b)
	defer ca.Close()
	defer cb.Close()

	frames := []struct {
		kind byte
		seq  uint32
		body []byte
	}{
		{frameHello, 0, encodeHello(2, helloFlagReconnect, 77)},
		{frameGo, 0, nil},
		{frameData, 1, encodeData(3, 42, 1, 4, []byte("payload"))},
		{framePing, 0, encodePing(123456789, 31)},
		{frameAck, 0, encodeSeq(9)},
		{frameReport, 2, []byte(`{"rank":1}`)},
	}
	go func() {
		for _, f := range frames {
			if err := ca.write(f.kind, f.seq, f.body); err != nil {
				t.Errorf("write(kind %d): %v", f.kind, err)
			}
		}
	}()
	for _, f := range frames {
		kind, seq, body, err := cb.read()
		if err != nil {
			t.Fatalf("read(kind %d): %v", f.kind, err)
		}
		if kind != f.kind || seq != f.seq || !bytes.Equal(body, f.body) {
			t.Fatalf("round trip: got (%d, %d, %q), want (%d, %d, %q)",
				kind, seq, body, f.kind, f.seq, f.body)
		}
	}
}

func TestFrameTruncatedHeader(t *testing.T) {
	// A stream that dies inside the length prefix or the kind/seq header
	// must fail structurally, never hang or return a phantom frame.
	for _, raw := range [][]byte{
		{},
		{0x09},
		{0x09, 0x00, 0x00},
		{0x09, 0x00, 0x00, 0x00},              // length says 9, nothing follows
		{0x09, 0x00, 0x00, 0x00, frameData},   // kind but no seq
		{0x09, 0x00, 0x00, 0x00, frameData, 1}, // partial seq
	} {
		c := readerOver(raw)
		if _, _, _, err := c.read(); err == nil {
			t.Errorf("read of truncated stream %v succeeded", raw)
		} else if err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Errorf("truncated stream %v: %v, want EOF-class error", raw, err)
		}
	}
}

func TestFrameBadLength(t *testing.T) {
	over := make([]byte, 4)
	binary.LittleEndian.PutUint32(over, maxFrame+1)
	under := make([]byte, 4)
	binary.LittleEndian.PutUint32(under, frameHeaderLen-1)
	for _, raw := range [][]byte{over, under, {0, 0, 0, 0}} {
		c := readerOver(raw)
		_, _, _, err := c.read()
		if err == nil {
			t.Fatalf("read accepted frame length %d", binary.LittleEndian.Uint32(raw))
		}
		if !strings.Contains(err.Error(), "frame length") {
			t.Errorf("bad length error %q is not structural", err)
		}
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	// Length promises 100 body bytes; the stream ends early.
	raw := make([]byte, 4+frameHeaderLen+10)
	binary.LittleEndian.PutUint32(raw, frameHeaderLen+100)
	raw[4] = frameData
	c := readerOver(raw)
	if _, _, _, err := c.read(); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated body: %v, want %v", err, io.ErrUnexpectedEOF)
	}
}

func TestDataBodyTooShort(t *testing.T) {
	// A DATA body shorter than its fixed header is a structural decode
	// error for the router, not a slice panic.
	for n := 0; n < dataHeaderLen; n++ {
		if _, _, _, _, _, err := decodeData(make([]byte, n)); err == nil {
			t.Errorf("decodeData accepted %d-byte body", n)
		}
	}
	kind, chanID, src, dst, payload, err := decodeData(encodeData(2, -7, 1, 3, []byte("xy")))
	if err != nil || kind != 2 || chanID != -7 || src != 1 || dst != 3 || string(payload) != "xy" {
		t.Errorf("decodeData round trip: %d %d %d %d %q %v", kind, chanID, src, dst, payload, err)
	}
}

func TestControlBodySizes(t *testing.T) {
	if _, _, _, err := decodeHello(make([]byte, helloLen-1)); err == nil {
		t.Error("decodeHello accepted a short body")
	}
	if _, _, _, err := decodeHello(make([]byte, helloLen+1)); err == nil {
		t.Error("decodeHello accepted a long body")
	}
	if _, err := decodeSeq([]byte{1, 2, 3}); err == nil {
		t.Error("decodeSeq accepted a short body")
	}
	if _, _, err := decodePing(make([]byte, pingLen-1)); err == nil {
		t.Error("decodePing accepted a short body")
	}
	rank, flags, last, err := decodeHello(encodeHello(3, helloFlagReconnect, 99))
	if err != nil || rank != 3 || flags != helloFlagReconnect || last != 99 {
		t.Errorf("hello round trip: %d %d %d %v", rank, flags, last, err)
	}
	nanos, ack, err := decodePing(encodePing(-5, 12))
	if err != nil || nanos != -5 || ack != 12 {
		t.Errorf("ping round trip: %d %d %v", nanos, ack, err)
	}
}

func TestTrimAcked(t *testing.T) {
	buf := []savedFrame{{seq: 1}, {seq: 2}, {seq: 3}, {seq: 4}}
	buf = trimAcked(buf, 2)
	if len(buf) != 2 || buf[0].seq != 3 || buf[1].seq != 4 {
		t.Fatalf("trimAcked(2) left %v", buf)
	}
	if buf = trimAcked(buf, 1); len(buf) != 2 {
		t.Fatalf("stale ack trimmed live frames: %v", buf)
	}
	if buf = trimAcked(buf, 10); len(buf) != 0 {
		t.Fatalf("full ack left %v", buf)
	}
}

func TestSequencedKinds(t *testing.T) {
	seq := map[byte]bool{
		frameData: true, frameResult: true, frameError: true,
		frameDrain: true, frameReport: true, frameBye: true,
	}
	for kind := frameHello; kind <= frameWelcome; kind++ {
		if sequenced(kind) != seq[kind] {
			t.Errorf("sequenced(%d) = %v", kind, sequenced(kind))
		}
	}
}

func TestRouteDropsOnDeadRank(t *testing.T) {
	// A routed frame whose destination is gone is counted, not silently
	// discarded and not a wedge.
	cd := &coord{stop: make(chan struct{}), depth: 4}
	l := &rankLink{rank: 1, out: make(chan outFrame, 4)}
	l.cond = sync.NewCond(&l.mu)
	cd.links = []*rankLink{nil, l}

	l.done.Store(true)
	cd.route(l, frameData, []byte("x"))
	if got := l.drops.Load(); got != 1 {
		t.Fatalf("drops after routing to a reported rank = %d, want 1", got)
	}
	l.done.Store(false)
	l.kill()
	cd.route(l, frameData, []byte("y"))
	if got := l.drops.Load(); got != 2 {
		t.Fatalf("drops after routing to a dead rank = %d, want 2", got)
	}
	if len(l.out) != 0 {
		t.Fatalf("dropped frames still queued: %d", len(l.out))
	}
}

func TestRouteBackpressure(t *testing.T) {
	// A live rank whose queue is full must surface structured
	// backpressure on the event channel instead of blocking the router.
	cd := &coord{stop: make(chan struct{}), depth: 1, evCh: make(chan event, 4)}
	l := &rankLink{rank: 0, out: make(chan outFrame, 1)}
	l.cond = sync.NewCond(&l.mu)
	cd.links = []*rankLink{l}

	cd.route(l, frameData, []byte("a"))
	cd.route(l, frameData, []byte("b"))
	select {
	case ev := <-cd.evCh:
		if !ev.backpressure || ev.rank != 0 {
			t.Fatalf("unexpected event %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("queue overflow produced no backpressure event")
	}
}
