package cluster

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

// A workload spec names an Eden program plus its parameters in URL
// query form: "sumeuler?n=2000&chunks=2". Both the coordinator and the
// workers build the program from the same spec string — the cluster's
// SPMD contract is that every process runs the same main — and the
// coordinator additionally gets an oracle to check the root's result
// against the sequential reference.
//
// Specs:
//
//	sumeuler?n=N&chunks=C    — sum of totients 1..N, C chunks per PE
//	apsp?n=N&ring=R&seed=S   — all-pairs shortest paths, R ring nodes
//	matmul?n=N&q=Q&seed=S    — Cannon q×q torus on N×N matrices
func BuildProgram(spec string) (pe.Program, func(graph.Value) error, error) {
	name, rawq, _ := strings.Cut(spec, "?")
	q, err := url.ParseQuery(rawq)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: workload spec %q: %w", spec, err)
	}
	getInt := func(key string, def int) int {
		if s := q.Get(key); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				return v
			}
		}
		return def
	}
	switch name {
	// The oracles are computed lazily, inside the returned check: every
	// worker calls BuildProgram at startup (the SPMD contract), and only
	// the coordinator ever runs the check — the workers must not each
	// pay for a sequential O(n^3) reference run.
	case "sumeuler":
		n, chunks := getInt("n", 2000), getInt("chunks", 2)
		return euler.EdenProgram(n, chunks, 0), func(v graph.Value) error {
			want := euler.SumTotientSieve(n)
			got, ok := v.(int64)
			if !ok || got != want {
				return fmt.Errorf("sumeuler(%d) = %v, want %d", n, v, want)
			}
			return nil
		}, nil
	case "apsp":
		n, ring, seed := getInt("n", 32), getInt("ring", 4), getInt("seed", 7)
		if ring < 1 {
			return nil, nil, fmt.Errorf("cluster: spec %q: ring size %d must be positive", spec, ring)
		}
		g := apsp.RandomGraph(n, uint64(seed), 40, 4)
		return apsp.EdenRingProgram(apsp.Clone(g), ring, 0), func(v graph.Value) error {
			want := apsp.FloydWarshall(apsp.Clone(g))
			got, ok := v.(apsp.Graph)
			if !ok || !apsp.Equal(got, want) {
				return fmt.Errorf("apsp(n=%d) differs from the Floyd-Warshall oracle", n)
			}
			return nil
		}, nil
	case "matmul":
		n, tq, seed := getInt("n", 32), getInt("q", 2), getInt("seed", 1)
		// EdenCannonProgram panics on a torus that does not tile the
		// matrix; this runs inside Config.Validate, so turn the bad
		// geometry into a fail-fast error instead.
		if tq < 1 || n%tq != 0 {
			return nil, nil, fmt.Errorf("cluster: spec %q: torus dimension %d must divide matrix size %d", spec, tq, n)
		}
		a, b := matmul.Random(n, uint64(seed)), matmul.Random(n, uint64(seed)+1)
		return matmul.EdenCannonProgram(a, b, tq, 0), func(v graph.Value) error {
			want := matmul.MulOracle(a, b)
			got, ok := v.(matmul.Mat)
			if !ok || !matmul.Equal(got, want, 1e-6) {
				return fmt.Errorf("matmul(n=%d,q=%d) differs from the sequential oracle", n, tq)
			}
			return nil
		}, nil
	default:
		return nil, nil, fmt.Errorf("cluster: unknown workload %q (want sumeuler, apsp or matmul)", name)
	}
}
