package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"parhask/internal/eden/wire"
	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/metrics"
	"parhask/internal/nativeeden"
)

// Config describes one cluster run the coordinator drives.
type Config struct {
	// Procs is the number of worker processes; PerProc the PEs each
	// hosts, so the program sees Procs*PerProc PEs.
	Procs   int
	PerProc int
	// Transport selects the wire: "tcp" (loopback) or "unix".
	Transport string
	// Spec names the workload (see BuildProgram).
	Spec string
	// Faults is an optional faults.Parse spec shipped to every worker;
	// its kill-rank/sever-rank/flap-rank/wedge-rank clauses are the
	// cluster-level fault classes (the targeted worker applies them to
	// itself).
	Faults string
	// EventLog makes every worker record per-PE timelines; the folded
	// Dump lands in Result.Timeline.
	EventLog bool
	// Deadline bounds the whole run. The coordinator owns deadlock
	// detection — a worker blocked on remote messages cannot tell a slow
	// peer from a dead cluster — so expiry kills the workers and fails
	// with a structured *faults.DeadlockError. Zero means a minute.
	Deadline time.Duration
	// Restart, when non-nil, lets RunSupervised retry the whole SPMD
	// run after a process death (see supervise.go). Run ignores it.
	Restart *Restart
	// Heartbeat is the liveness ping interval; a rank silent for four
	// intervals dies with reason "heartbeat timeout". Zero means 500ms.
	Heartbeat time.Duration
	// ReconnectWindow is how long a rank whose link broke may redial
	// and resume in place before the break is declared a death. Zero
	// means 3s; negative disables reconnection entirely.
	ReconnectWindow time.Duration
	// QueueDepth bounds each rank's outbound frame queue and retransmit
	// buffer; overflow is a structured backpressure death, never a
	// wedged coordinator. Zero means 1024.
	QueueDepth int
	// Metrics, when non-nil, receives the recovery counters
	// (cluster_restarts_total, cluster_reconnects_total,
	// cluster_dropped_frames_total) and the recovery-latency histogram.
	Metrics *metrics.Registry
	// Stderr receives the workers' stderr (defaults to os.Stderr).
	Stderr io.Writer
}

// Defaults for the liveness and recovery knobs.
const (
	defaultHeartbeat       = 500 * time.Millisecond
	heartbeatMissFactor    = 4
	defaultReconnectWindow = 3 * time.Second
	defaultQueueDepth      = 1024
	terminateGrace         = 2 * time.Second
)

// Validate is the fail-fast check the CLIs run on flag parse: it
// rejects a nonsensical topology, an unknown transport, a workload
// spec that does not build, and an unparseable fault plan — before any
// process is launched.
func (cfg *Config) Validate() error {
	if cfg.Procs < 1 {
		return fmt.Errorf("cluster: need at least 1 process, have %d", cfg.Procs)
	}
	if cfg.PerProc < 1 {
		return fmt.Errorf("cluster: need at least 1 PE per process, have %d", cfg.PerProc)
	}
	if cfg.Transport != "tcp" && cfg.Transport != "unix" {
		return fmt.Errorf("cluster: unknown transport %q (want tcp or unix)", cfg.Transport)
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("cluster: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.Restart != nil && cfg.Restart.Max < 0 {
		return fmt.Errorf("cluster: negative restart budget %d", cfg.Restart.Max)
	}
	if _, _, err := BuildProgram(cfg.Spec); err != nil {
		return err
	}
	if _, err := faults.Parse(cfg.Faults); err != nil {
		return err
	}
	return nil
}

// Result is the folded outcome of a cluster run.
type Result struct {
	// Value is the root process's result, decoded from rank 0's wire
	// bytes.
	Value graph.Value
	// WallNS is rank 0's run wall time (the root's own measurement);
	// CoordNS the coordinator's, including launch and drain.
	WallNS  int64
	CoordNS int64
	Procs   int
	PerProc int
	// Total and PerPE fold every rank's counters; PerPE is indexed by
	// global PE.
	Total nativeeden.Stats
	PerPE []nativeeden.PEStats
	GC    nativeeden.GCStats
	// Reports are the per-rank summaries as the workers sent them.
	Reports []nativeeden.Report
	// Timeline is the merged per-PE event dump (nil unless EventLog).
	// Runs that rode out link outages gain a synthetic "coord" lane
	// whose block events bracket each outage window.
	Timeline *eventlog.Dump
	// Restarts counts full-run retries RunSupervised performed before
	// this (successful) result; Attempts is their history.
	Restarts int
	Attempts []Attempt
	// RecoveryNS is the recovery latency of a supervised run: first
	// failure detection to final success. Zero when no restart
	// happened.
	RecoveryNS int64
	// Reconnects counts in-place link recoveries (worker redials
	// accepted mid-run); ReconnectNS is the total wall time links
	// spent down before healing.
	Reconnects  int
	ReconnectNS int64
	// DroppedFrames counts, per destination rank, routed frames
	// discarded because the destination was already gone — a lossy run
	// is visible even when it succeeds (a rank that reported and left
	// may still be routed to by stragglers).
	DroppedFrames []int64
	// HeartbeatRTTNS is the worst ping round trip observed.
	HeartbeatRTTNS int64
}

// pesOf lists the global PEs rank owns — the unreachable set a
// ProcessDeathError reports.
func pesOf(rank, perProc int) []int {
	pes := make([]int, perProc)
	for i := range pes {
		pes[i] = rank*perProc + i
	}
	return pes
}

// outFrame is one queued outbound frame; the writer stamps the
// sequence number at send time.
type outFrame struct {
	kind byte
	body []byte
}

// rankLink is the coordinator's half of one worker link: the live
// conn (nil while the rank is down), the bounded outbound queue its
// writer goroutine drains, and the seq/ack state that makes a
// reconnect lossless.
type rankLink struct {
	rank int

	mu       sync.Mutex
	cond     *sync.Cond
	c        *conn
	gen      int // bumped per (re)connect; readers and timers carry it
	dead     bool
	sendSeq  uint32
	unacked  []savedFrame
	lastRecv uint32

	out chan outFrame

	up       atomic.Bool  // link currently connected
	done     atomic.Bool  // rank has reported; frames to it now drop
	lastSeen atomic.Int64 // unix nanos of the last frame from this rank
	drops    atomic.Int64 // routed frames discarded (dead/done destination)
	rttNS    atomic.Int64 // worst heartbeat round trip
}

func (l *rankLink) curGen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

func (l *rankLink) isDead() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

// accept applies receive-side sequencing (see wlink.accept).
func (l *rankLink) accept(seq uint32) (process, ackNow bool, err error) {
	if seq == 0 {
		return true, false, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case seq <= l.lastRecv:
		return false, false, nil
	case seq != l.lastRecv+1:
		return false, false, fmt.Errorf("cluster: rank %d: sequence gap (frame %d after %d)", l.rank, seq, l.lastRecv)
	}
	l.lastRecv = seq
	return true, l.lastRecv%ackEvery == 0, nil
}

func (l *rankLink) ackSent(seq uint32) {
	l.mu.Lock()
	l.unacked = trimAcked(l.unacked, seq)
	l.mu.Unlock()
}

func (l *rankLink) recvCursor() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastRecv
}

// kill marks the link terminally dead and wakes its writer.
func (l *rankLink) kill() {
	l.mu.Lock()
	l.dead = true
	if l.c != nil {
		l.c.Close()
		l.c = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	l.up.Store(false)
}

// event is one occurrence the readers, writers, process waiters,
// accept loop and timers feed the coordinator's state machine.
type event struct {
	rank int
	gen  int    // connection generation, for ignoring stale reports
	kind byte   // frame kind, 0 for non-frame events
	body []byte
	err  error

	exit         bool  // process exit (err is its wait status)
	readerEnd    bool  // connection reader finished (err says why)
	graceful     bool  // readerEnd via a clean BYE
	reHello      *conn // reconnect HELLO accepted by the listener
	helloRecv    uint32
	winExpired   bool // reconnect window ran out
	hbTimeout    bool // heartbeat staleness observed
	backpressure bool // outbound queue or retransmit buffer overflow
}

// coord is one run's coordinator state shared by its goroutines.
type coord struct {
	cfg       Config
	procs     int
	perProc   int
	links     []*rankLink
	evCh      chan event
	stop      chan struct{}
	hb        time.Duration
	hbTimeout time.Duration
	window    time.Duration // reconnect window; <0 disables
	depth     int

	mReconnects *metrics.Counter
	mDrops      *metrics.Counter
}

func (cd *coord) emit(ev event) {
	select {
	case cd.evCh <- ev:
	case <-cd.stop:
	}
}

func (cd *coord) reconnectOK() bool { return cd.window >= 0 }

// route queues one frame for dst's writer. A dead or departed
// destination counts a drop (the routed-frame loss the Result
// surfaces); a full queue is a backpressure death — structured, never
// a wedged coordinator.
func (cd *coord) route(l *rankLink, kind byte, body []byte) {
	if l.done.Load() || l.isDead() {
		l.drops.Add(1)
		if cd.mDrops != nil {
			cd.mDrops.Inc()
		}
		return
	}
	select {
	case l.out <- outFrame{kind: kind, body: body}:
	case <-cd.stop:
	default:
		cd.emit(event{rank: l.rank, backpressure: true})
	}
}

// writeLoop drains one rank's outbound queue. Dedicated writers are
// what removed the head-of-line blocking of the reader-routes-
// synchronously design: a slow destination socket stalls only its own
// queue, never the source rank's reader.
func (cd *coord) writeLoop(l *rankLink) {
	for {
		select {
		case f := <-l.out:
			cd.deliver(l, f)
		case <-cd.stop:
			return
		}
	}
}

// deliver sends one queued frame, waiting out a reconnect if the link
// is down. Sequenced frames enter the retransmit buffer before the
// write, so a mid-flight break is healed by the install-time replay.
func (cd *coord) deliver(l *rankLink, f outFrame) {
	l.mu.Lock()
	for l.c == nil && !l.dead {
		l.cond.Wait()
	}
	if l.dead {
		l.mu.Unlock()
		if sequenced(f.kind) {
			l.drops.Add(1)
			if cd.mDrops != nil {
				cd.mDrops.Inc()
			}
		}
		return
	}
	c := l.c
	var seq uint32
	if sequenced(f.kind) {
		l.sendSeq++
		seq = l.sendSeq
		l.unacked = append(l.unacked, savedFrame{seq: seq, kind: f.kind, body: f.body})
		if len(l.unacked) > cd.depth {
			l.mu.Unlock()
			cd.emit(event{rank: l.rank, backpressure: true})
			return
		}
	}
	l.mu.Unlock()
	if err := c.write(f.kind, seq, f.body); err != nil {
		// The reader on this conn reports the break; the frame sits in
		// the retransmit buffer for the reconnect replay.
		l.mu.Lock()
		if l.c == c {
			l.c = nil
		}
		l.mu.Unlock()
		c.Close()
	}
}

// readLoop pumps one connection generation of one rank: data frames
// are routed (via the destination's queue), pongs and acks feed the
// liveness and retransmit state, control frames go to the state
// machine, and a broken connection is reported with its generation so
// a stale reader cannot kill a healed link.
func (cd *coord) readLoop(l *rankLink, c *conn, gen int) {
	fail := func(err error) {
		c.Close()
		cd.emit(event{rank: l.rank, gen: gen, readerEnd: true, err: err})
	}
	for {
		kind, seq, body, err := c.read()
		if err != nil {
			cd.emit(event{rank: l.rank, gen: gen, readerEnd: true, err: err})
			return
		}
		l.lastSeen.Store(time.Now().UnixNano())
		process, ackNow, serr := l.accept(seq)
		if serr != nil {
			fail(serr)
			return
		}
		if seq != 0 && (ackNow || !process || kind != frameData) {
			// Ack promptly on the control frames (a worker lingers on its
			// unacked report) and on replayed duplicates; bulk data acks
			// every ackEvery.
			_ = c.write(frameAck, 0, encodeSeq(l.recvCursor()))
		}
		if !process {
			continue
		}
		switch kind {
		case frameData:
			_, _, _, dst, _, derr := decodeData(body)
			if derr != nil {
				fail(derr)
				return
			}
			owner := 0
			if cd.perProc > 0 {
				owner = dst / cd.perProc
			}
			if owner >= 0 && owner < len(cd.links) {
				cd.route(cd.links[owner], frameData, body)
			}
		case framePong:
			nanos, ack, perr := decodePing(body)
			if perr == nil {
				if rtt := time.Now().UnixNano() - nanos; rtt > l.rttNS.Load() {
					l.rttNS.Store(rtt)
				}
				l.ackSent(ack)
			}
		case frameAck:
			if s, aerr := decodeSeq(body); aerr == nil {
				l.ackSent(s)
			}
		case frameBye:
			cd.emit(event{rank: l.rank, gen: gen, readerEnd: true, graceful: true})
			return
		default:
			cd.emit(event{rank: l.rank, gen: gen, kind: kind, body: body})
		}
	}
}

// heartbeat pings every live rank and reports staleness. Pings travel
// the normal outbound queues (never a blocking write on this loop), a
// stale lastSeen is detected here regardless of whether the ping
// itself got through — a wedged worker is silent, and silence is the
// signal.
func (cd *coord) heartbeat() {
	t := time.NewTicker(cd.hb)
	defer t.Stop()
	for {
		select {
		case <-cd.stop:
			return
		case <-t.C:
			now := time.Now().UnixNano()
			for _, l := range cd.links {
				if !l.up.Load() || l.done.Load() {
					continue
				}
				if now-l.lastSeen.Load() > cd.hbTimeout.Nanoseconds() {
					cd.emit(event{rank: l.rank, hbTimeout: true})
					continue
				}
				select {
				case l.out <- outFrame{kind: framePing, body: encodePing(now, l.recvCursor())}:
				default: // queue full: data is flowing, acks cover liveness
				}
			}
		}
	}
}

// acceptLoop keeps the listener hot for the whole run so a worker
// redialling after a link failure finds someone to talk to. Joining
// HELLOs are handed to the initial gather; reconnect HELLOs go to the
// state machine.
type joinConn struct {
	rank int
	c    *conn
	err  error
}

func (cd *coord) acceptLoop(ln net.Listener, joinCh chan<- joinConn) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed: run over
		}
		go cd.handleHello(nc, joinCh)
	}
}

func (cd *coord) handleHello(nc net.Conn, joinCh chan<- joinConn) {
	_ = nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	c := newConn(nc)
	kind, _, body, err := c.read()
	if err != nil || kind != frameHello {
		nc.Close()
		cd.join(joinCh, joinConn{rank: -1, err: fmt.Errorf("cluster: bad hello (kind %d): %v", kind, err)})
		return
	}
	rank, flags, lastRecv, derr := decodeHello(body)
	if derr != nil || rank < 0 || rank >= cd.procs {
		nc.Close()
		cd.join(joinCh, joinConn{rank: -1, err: fmt.Errorf("cluster: hello from invalid rank %d: %v", rank, derr)})
		return
	}
	_ = nc.SetReadDeadline(time.Time{})
	if flags&helloFlagReconnect != 0 {
		cd.emit(event{rank: rank, reHello: c, helloRecv: lastRecv})
		return
	}
	cd.join(joinCh, joinConn{rank: rank, c: c})
}

func (cd *coord) join(joinCh chan<- joinConn, j joinConn) {
	select {
	case joinCh <- j:
	case <-cd.stop:
		if j.c != nil {
			j.c.Close()
		}
	}
}

// Run executes one cluster run: launch Procs workers re-executing this
// binary, route their traffic, collect rank 0's result, drain, fold.
// A worker that dies, wedges, or loses its link beyond the reconnect
// window fails the run with a *faults.ProcessDeathError; deadline
// expiry with a *faults.DeadlockError. The partial Result (whatever
// reports arrived) is returned alongside either error. Run is a single
// attempt — RunSupervised adds the restart policy.
func Run(cfg Config) (*Result, error) {
	return runAttempt(cfg, 0)
}

func runAttempt(cfg Config, attempt int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = time.Minute
	}
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}

	cd := &coord{
		cfg:     cfg,
		procs:   cfg.Procs,
		perProc: cfg.PerProc,
		evCh:    make(chan event, cfg.Procs*8+16),
		stop:    make(chan struct{}),
		hb:      cfg.Heartbeat,
		window:  cfg.ReconnectWindow,
		depth:   cfg.QueueDepth,
	}
	if cd.hb <= 0 {
		cd.hb = defaultHeartbeat
	}
	cd.hbTimeout = heartbeatMissFactor * cd.hb
	if cd.window == 0 {
		cd.window = defaultReconnectWindow
	}
	if cd.depth <= 0 {
		cd.depth = defaultQueueDepth
	}
	if cfg.Metrics != nil {
		cd.mReconnects = cfg.Metrics.Counter("cluster_reconnects_total", "worker link reconnects accepted mid-run")
		cd.mDrops = cfg.Metrics.Counter("cluster_dropped_frames_total", "routed frames dropped on a dead destination")
	}
	cd.links = make([]*rankLink, cfg.Procs)
	for rank := range cd.links {
		l := &rankLink{rank: rank, out: make(chan outFrame, cd.depth)}
		l.cond = sync.NewCond(&l.mu)
		cd.links[rank] = l
	}

	// Listen before launching so workers have something to dial.
	var ln net.Listener
	var addr string
	switch cfg.Transport {
	case "tcp":
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		addr = ln.Addr().String()
	case "unix":
		dir, err := os.MkdirTemp("", "parhask-cluster-")
		if err != nil {
			return nil, fmt.Errorf("cluster: socket dir: %w", err)
		}
		defer os.RemoveAll(dir)
		addr = filepath.Join(dir, "coord.sock")
		ln, err = net.Listen("unix", addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
	}
	defer ln.Close()

	// Shutdown order matters (defers are LIFO): workers are terminated
	// gracefully FIRST, while their links are still open, so draining
	// workers can flush reports; then the links die and every helper
	// goroutine unwinds.
	defer func() {
		close(cd.stop)
		for _, l := range cd.links {
			l.kill()
		}
	}()

	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("cluster: resolving own binary: %w", err)
	}
	cmds := make([]*exec.Cmd, cfg.Procs)
	for rank := range cmds {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", envRank, rank),
			fmt.Sprintf("%s=%d", envProcs, cfg.Procs),
			fmt.Sprintf("%s=%d", envPerProc, cfg.PerProc),
			fmt.Sprintf("%s=%s", envAddr, addr),
			fmt.Sprintf("%s=%s", envTransport, cfg.Transport),
			fmt.Sprintf("%s=%s", envSpec, cfg.Spec),
			fmt.Sprintf("%s=%s", envFaults, cfg.Faults),
			fmt.Sprintf("%s=%s", envEventLog, boolEnv(cfg.EventLog)),
			fmt.Sprintf("%s=%d", envAttempt, attempt),
			fmt.Sprintf("%s=%s", envReconnect, boolEnv(cd.reconnectOK())),
		)
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			terminateAll(cmds, 0)
			return nil, fmt.Errorf("cluster: launching rank %d: %w", rank, err)
		}
		cmds[rank] = cmd
	}
	defer terminateAll(cmds, terminateGrace)

	joinCh := make(chan joinConn, cfg.Procs)
	go cd.acceptLoop(ln, joinCh)
	if err := cd.gather(joinCh, deadline); err != nil {
		return nil, err
	}

	// GO must reach every worker before any reader starts routing: the
	// first worker released sends data immediately, and a routed data
	// frame must not overtake another worker's GO on its connection.
	// Until the readers run, early frames just wait in socket buffers.
	start := time.Now()
	for _, l := range cd.links {
		if err := l.c.write(frameGo, 0, nil); err != nil {
			return nil, fmt.Errorf("cluster: starting workers: %w", err)
		}
	}

	now := time.Now().UnixNano()
	for _, l := range cd.links {
		l.lastSeen.Store(now)
		l.up.Store(true)
		go cd.readLoop(l, l.c, l.gen)
		go cd.writeLoop(l)
	}
	go cd.heartbeat()
	for rank, cmd := range cmds {
		go func(rank int, cmd *exec.Cmd) {
			cd.emit(event{rank: rank, exit: true, err: cmd.Wait()})
		}(rank, cmd)
	}

	// The state machine: wait for rank 0's result, drain, collect every
	// rank's report. A death before a rank has reported fails the run —
	// but a broken link first gets the reconnect window, and a healed
	// link resumes as if nothing happened. The deadline backstops a
	// wedged cluster.
	res := &Result{Procs: cfg.Procs, PerProc: cfg.PerProc}
	reports := make([]*workerReport, cfg.Procs)
	exitSeen := make([]bool, cfg.Procs)
	exitErrs := make([]error, cfg.Procs)
	downSince := make([]time.Time, cfg.Procs)
	downReason := make([]string, cfg.Procs)
	downErr := make([]error, cfg.Procs)
	var coordEvents []eventlog.DumpEvent
	nReports := 0
	exited := 0
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	var runErr error

	died := func(rank int, reason string, err error) *faults.ProcessDeathError {
		return &faults.ProcessDeathError{
			Rank: rank, PEs: pesOf(rank, cfg.PerProc), Reason: reason, Err: err,
		}
	}
	// linkDown classifies a break and opens the reconnect window (or
	// returns the death immediately when reconnection is off).
	linkDown := func(rank int, err error) *faults.ProcessDeathError {
		l := cd.links[rank]
		reason := "connection closed"
		if err != nil && err != io.EOF {
			reason = "connection error"
		}
		if exitSeen[rank] {
			return died(rank, "exit", exitErrs[rank])
		}
		if !cd.reconnectOK() {
			return died(rank, reason, err)
		}
		downSince[rank] = time.Now()
		downReason[rank], downErr[rank] = reason, err
		if os.Getenv("PARHASK_CLUSTER_DEBUG") != "" {
			fmt.Fprintf(os.Stderr, "coord debug: rank %d link down: %s (%v)\n", rank, reason, err)
		}
		coordEvents = append(coordEvents, eventlog.DumpEvent{
			T: time.Since(start).Nanoseconds(), Type: "block-begin", Arg: int32(rank),
		})
		gen := l.curGen()
		win := cd.window
		time.AfterFunc(win, func() {
			cd.emit(event{rank: rank, gen: gen, winExpired: true})
		})
		return nil
	}

loop:
	for nReports < cfg.Procs {
		select {
		case <-timer.C:
			runErr = &faults.DeadlockError{Backend: "cluster", Reason: "deadline", Elapsed: time.Since(start)}
			break loop
		case ev := <-cd.evCh:
			l := cd.links[ev.rank]
			switch {
			case ev.exit:
				exited++
				exitSeen[ev.rank] = true
				exitErrs[ev.rank] = ev.err
				if reports[ev.rank] == nil && !l.up.Load() {
					// The process is gone: no reconnect is coming. Report
					// the first observed cause if the link broke first.
					if !downSince[ev.rank].IsZero() {
						runErr = died(ev.rank, downReason[ev.rank], downErr[ev.rank])
					} else {
						runErr = died(ev.rank, "exit", ev.err)
					}
					break loop
				}
			case ev.readerEnd:
				if ev.gen != l.curGen() {
					break // a replaced connection's reader winding down
				}
				l.mu.Lock()
				if l.c != nil {
					l.c.Close()
					l.c = nil
				}
				l.mu.Unlock()
				l.up.Store(false)
				if reports[ev.rank] != nil {
					break // reported already; the exit watcher handles the rest
				}
				if ev.graceful {
					runErr = died(ev.rank, "connection closed", nil)
					break loop
				}
				if pd := linkDown(ev.rank, ev.err); pd != nil {
					runErr = pd
					break loop
				}
			case ev.reHello != nil:
				if !cd.reconnectOK() || l.done.Load() || l.isDead() || reports[ev.rank] != nil {
					ev.reHello.Close()
					break
				}
				if !cd.resumeRank(l, ev.reHello, ev.helloRecv) {
					break
				}
				res.Reconnects++
				if cd.mReconnects != nil {
					cd.mReconnects.Inc()
				}
				if !downSince[ev.rank].IsZero() {
					res.ReconnectNS += time.Since(downSince[ev.rank]).Nanoseconds()
					downSince[ev.rank] = time.Time{}
				}
				coordEvents = append(coordEvents, eventlog.DumpEvent{
					T: time.Since(start).Nanoseconds(), Type: "block-end", Arg: int32(ev.rank),
				})
			case ev.winExpired:
				if reports[ev.rank] != nil || l.up.Load() || ev.gen != l.curGen() {
					break // healed (or finished) before the window closed
				}
				runErr = died(ev.rank, downReason[ev.rank], downErr[ev.rank])
				break loop
			case ev.hbTimeout:
				if reports[ev.rank] != nil || !l.up.Load() {
					break
				}
				if time.Now().UnixNano()-l.lastSeen.Load() < cd.hbTimeout.Nanoseconds() {
					break // a frame arrived since the tick
				}
				runErr = died(ev.rank, "heartbeat timeout",
					fmt.Errorf("silent for %v", time.Duration(time.Now().UnixNano()-l.lastSeen.Load())))
				break loop
			case ev.backpressure:
				if reports[ev.rank] != nil {
					break
				}
				runErr = died(ev.rank, "backpressure",
					fmt.Errorf("outbound queue overflow (depth %d)", cd.depth))
				break loop
			case ev.kind == frameResult:
				v, derr := wire.Decode(ev.body)
				if derr != nil {
					runErr = fmt.Errorf("cluster: decoding rank 0 result: %w", derr)
					break loop
				}
				res.Value = v
				// The result is in: drain the other ranks so they unwind
				// and report. The drain rides each rank's queue, so a rank
				// mid-reconnect still gets it after healing.
				for rank := 1; rank < cfg.Procs; rank++ {
					cd.route(cd.links[rank], frameDrain, nil)
				}
			case ev.kind == frameError:
				runErr = decodeWorkerError(ev.rank, ev.body)
				break loop
			case ev.kind == frameReport:
				var rep workerReport
				if derr := json.Unmarshal(ev.body, &rep); derr != nil {
					runErr = fmt.Errorf("cluster: rank %d report: %w", ev.rank, derr)
					break loop
				}
				if reports[ev.rank] == nil {
					reports[ev.rank] = &rep
					nReports++
					l.done.Store(true)
				}
			}
		}
	}
	res.CoordNS = time.Since(start).Nanoseconds()
	foldReports(res, reports, coordEvents)
	res.DroppedFrames = make([]int64, cfg.Procs)
	for rank, l := range cd.links {
		res.DroppedFrames[rank] = l.drops.Load()
		if rtt := l.rttNS.Load(); rtt > res.HeartbeatRTTNS {
			res.HeartbeatRTTNS = rtt
		}
	}
	if runErr != nil {
		return res, runErr
	}

	// Clean shutdown: give the drained workers a moment to exit; the
	// deferred terminate sweeps up anything left (TERM, then KILL).
	grace := time.NewTimer(10 * time.Second)
	defer grace.Stop()
	for exited < cfg.Procs {
		select {
		case ev := <-cd.evCh:
			if ev.exit {
				exited++
			}
		case <-grace.C:
			return res, nil
		}
	}
	return res, nil
}

// gather collects the initial joining HELLO of every rank.
func (cd *coord) gather(joinCh <-chan joinConn, deadline time.Duration) error {
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	joined := 0
	for joined < cd.procs {
		select {
		case <-timer.C:
			return fmt.Errorf("cluster: waiting for workers (%d/%d connected): timeout", joined, cd.procs)
		case j := <-joinCh:
			if j.err != nil {
				return j.err
			}
			l := cd.links[j.rank]
			l.mu.Lock()
			dup := l.c != nil
			if !dup {
				l.c = j.c
				l.gen = 1
			}
			l.mu.Unlock()
			if dup {
				j.c.Close()
				return fmt.Errorf("cluster: hello from duplicate rank %d", j.rank)
			}
			joined++
		}
	}
	return nil
}

// resumeRank installs a reconnect HELLO's connection: welcome the
// worker with our receive cursor, replay everything it never acked,
// then swap the conn in and wake the writer. Runs on the state
// machine, so installs are serialised per rank.
func (cd *coord) resumeRank(l *rankLink, c *conn, helloRecv uint32) bool {
	l.mu.Lock()
	if l.c != nil {
		// The worker noticed the break before our reader did: replace.
		old := l.c
		l.c = nil
		old.Close()
	}
	l.unacked = trimAcked(l.unacked, helloRecv)
	werr := c.write(frameWelcome, 0, encodeSeq(l.lastRecv))
	if werr == nil {
		for _, sf := range l.unacked {
			if werr = c.write(sf.kind, sf.seq, sf.body); werr != nil {
				break
			}
		}
	}
	if werr != nil {
		l.mu.Unlock()
		c.Close()
		return false
	}
	l.gen++
	gen := l.gen
	l.c = c
	l.cond.Broadcast()
	l.mu.Unlock()
	l.lastSeen.Store(time.Now().UnixNano())
	l.up.Store(true)
	go cd.readLoop(l, c, gen)
	return true
}

func boolEnv(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// terminateAll shuts down every still-running worker gracefully:
// SIGTERM first (a draining worker flushes its report and eventlog),
// a probe loop until everything is reaped or the grace runs out, then
// SIGKILL as the backstop. The Wait goroutines own reaping, so
// liveness is probed with the null signal.
func terminateAll(cmds []*exec.Cmd, grace time.Duration) {
	live := func() []*exec.Cmd {
		var out []*exec.Cmd
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil && cmd.Process.Signal(syscall.Signal(0)) == nil {
				out = append(out, cmd)
			}
		}
		return out
	}
	remaining := live()
	if len(remaining) == 0 {
		return
	}
	for _, cmd := range remaining {
		_ = cmd.Process.Signal(syscall.SIGTERM)
	}
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		if remaining = live(); len(remaining) == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, cmd := range remaining {
		_ = cmd.Process.Kill()
	}
}

// foldReports merges the per-rank reports into the global view: each
// rank owns its PE slots, totals sum, timelines concatenate in global
// PE order, and any recovery events gain a synthetic coordinator lane.
func foldReports(res *Result, reports []*workerReport, coordEvents []eventlog.DumpEvent) {
	res.PerPE = make([]nativeeden.PEStats, res.Procs*res.PerProc)
	res.Reports = make([]nativeeden.Report, res.Procs)
	var dumps []*eventlog.Dump
	for rank, rep := range reports {
		if rep == nil {
			continue
		}
		res.Reports[rank] = rep.Report
		for i := 0; i < res.PerProc; i++ {
			g := rank*res.PerProc + i
			if g < len(rep.Report.PerPE) {
				res.PerPE[g] = rep.Report.PerPE[g]
			}
		}
		res.Total.Messages += rep.Report.Total.Messages
		res.Total.BytesSent += rep.Report.Total.BytesSent
		res.Total.Processes += rep.Report.Total.Processes
		res.Total.ThreadsCreated += rep.Report.Total.ThreadsCreated
		res.GC.Cycles += rep.Report.GC.Cycles
		res.GC.PauseNS += rep.Report.GC.PauseNS
		res.GC.BytesAlloc += rep.Report.GC.BytesAlloc
		res.GC.Shared = res.GC.Shared || rep.Report.GC.Shared
		if rank == 0 {
			res.WallNS = rep.Report.WallNS
		}
		if rep.Dump != nil {
			dumps = append(dumps, rep.Dump)
		}
	}
	res.Timeline = mergeDumps(dumps, coordEvents)
}

// mergeDumps concatenates per-rank timeline dumps (already in rank
// order, agents named by global PE) into one cluster-wide dump. When
// the run rode out link outages, a synthetic "coord" lane carries the
// recovery brackets (block-begin at the break, block-end at the
// accepted re-HELLO, Arg = rank).
func mergeDumps(dumps []*eventlog.Dump, coordEvents []eventlog.DumpEvent) *eventlog.Dump {
	if len(dumps) == 0 {
		return nil
	}
	out := &eventlog.Dump{Backend: "cluster"}
	for _, d := range dumps {
		out.Agents = append(out.Agents, d.Agents...)
		out.Events = append(out.Events, d.Events...)
		out.Dropped += d.Dropped
		if d.WallNS > out.WallNS {
			out.WallNS = d.WallNS
		}
	}
	if len(coordEvents) > 0 {
		// Unhealed outages (run failed or finished mid-window) still
		// close their bracket so the lane renders.
		open := map[int32]bool{}
		for _, ev := range coordEvents {
			if ev.Type == "block-begin" {
				open[ev.Arg] = true
			} else {
				delete(open, ev.Arg)
			}
		}
		last := coordEvents[len(coordEvents)-1].T
		for rank := range open {
			coordEvents = append(coordEvents, eventlog.DumpEvent{T: last, Type: "block-end", Arg: rank})
		}
		out.Agents = append(out.Agents, "coord")
		out.Events = append(out.Events, coordEvents)
	}
	return out
}
