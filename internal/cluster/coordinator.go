package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"parhask/internal/eden/wire"
	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/nativeeden"
)

// Config describes one cluster run the coordinator drives.
type Config struct {
	// Procs is the number of worker processes; PerProc the PEs each
	// hosts, so the program sees Procs*PerProc PEs.
	Procs   int
	PerProc int
	// Transport selects the wire: "tcp" (loopback) or "unix".
	Transport string
	// Spec names the workload (see BuildProgram).
	Spec string
	// Faults is an optional faults.Parse spec shipped to every worker;
	// its kill-rank/sever-rank clauses are the cluster-level fault
	// classes (the targeted worker applies them to itself).
	Faults string
	// EventLog makes every worker record per-PE timelines; the folded
	// Dump lands in Result.Timeline.
	EventLog bool
	// Deadline bounds the whole run. The coordinator owns deadlock
	// detection — a worker blocked on remote messages cannot tell a slow
	// peer from a dead cluster — so expiry kills the workers and fails
	// with a structured *faults.DeadlockError. Zero means a minute.
	Deadline time.Duration
	// Stderr receives the workers' stderr (defaults to os.Stderr).
	Stderr io.Writer
}

// Validate is the fail-fast check the CLIs run on flag parse: it
// rejects a nonsensical topology, an unknown transport, a workload
// spec that does not build, and an unparseable fault plan — before any
// process is launched.
func (cfg *Config) Validate() error {
	if cfg.Procs < 1 {
		return fmt.Errorf("cluster: need at least 1 process, have %d", cfg.Procs)
	}
	if cfg.PerProc < 1 {
		return fmt.Errorf("cluster: need at least 1 PE per process, have %d", cfg.PerProc)
	}
	if cfg.Transport != "tcp" && cfg.Transport != "unix" {
		return fmt.Errorf("cluster: unknown transport %q (want tcp or unix)", cfg.Transport)
	}
	if _, _, err := BuildProgram(cfg.Spec); err != nil {
		return err
	}
	if _, err := faults.Parse(cfg.Faults); err != nil {
		return err
	}
	return nil
}

// Result is the folded outcome of a cluster run.
type Result struct {
	// Value is the root process's result, decoded from rank 0's wire
	// bytes.
	Value graph.Value
	// WallNS is rank 0's run wall time (the root's own measurement);
	// CoordNS the coordinator's, including launch and drain.
	WallNS  int64
	CoordNS int64
	Procs   int
	PerProc int
	// Total and PerPE fold every rank's counters; PerPE is indexed by
	// global PE.
	Total nativeeden.Stats
	PerPE []nativeeden.PEStats
	GC    nativeeden.GCStats
	// Reports are the per-rank summaries as the workers sent them.
	Reports []nativeeden.Report
	// Timeline is the merged per-PE event dump (nil unless EventLog).
	Timeline *eventlog.Dump
}

// pesOf lists the global PEs rank owns — the unreachable set a
// ProcessDeathError reports.
func pesOf(rank, perProc int) []int {
	pes := make([]int, perProc)
	for i := range pes {
		pes[i] = rank*perProc + i
	}
	return pes
}

// event is one occurrence the per-connection readers and process
// waiters feed the coordinator's state machine.
type event struct {
	rank int
	kind byte // frame kind, 0 for connection/process events
	body []byte
	err  error // connection failure (kind 0)
	exit bool  // process exit (err is its wait status)
}

// Run executes one cluster run: launch Procs workers re-executing this
// binary, route their traffic, collect rank 0's result, drain, fold.
// A worker that dies or loses its link before reporting fails the run
// with a *faults.ProcessDeathError; deadline expiry with a
// *faults.DeadlockError. The partial Result (whatever reports arrived)
// is returned alongside either error.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	deadline := cfg.Deadline
	if deadline <= 0 {
		deadline = time.Minute
	}
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}

	// Listen before launching so workers have something to dial.
	var ln net.Listener
	var addr string
	switch cfg.Transport {
	case "tcp":
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		addr = ln.Addr().String()
	case "unix":
		dir, err := os.MkdirTemp("", "parhask-cluster-")
		if err != nil {
			return nil, fmt.Errorf("cluster: socket dir: %w", err)
		}
		defer os.RemoveAll(dir)
		addr = filepath.Join(dir, "coord.sock")
		ln, err = net.Listen("unix", addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
	}
	defer ln.Close()

	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("cluster: resolving own binary: %w", err)
	}
	cmds := make([]*exec.Cmd, cfg.Procs)
	for rank := range cmds {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", envRank, rank),
			fmt.Sprintf("%s=%d", envProcs, cfg.Procs),
			fmt.Sprintf("%s=%d", envPerProc, cfg.PerProc),
			fmt.Sprintf("%s=%s", envAddr, addr),
			fmt.Sprintf("%s=%s", envTransport, cfg.Transport),
			fmt.Sprintf("%s=%s", envSpec, cfg.Spec),
			fmt.Sprintf("%s=%s", envFaults, cfg.Faults),
			fmt.Sprintf("%s=%s", envEventLog, boolEnv(cfg.EventLog)),
		)
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			killAll(cmds)
			return nil, fmt.Errorf("cluster: launching rank %d: %w", rank, err)
		}
		cmds[rank] = cmd
	}
	defer killAll(cmds)

	conns, err := acceptWorkers(ln, cfg.Procs, deadline)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()

	// GO must reach every worker before any reader starts routing: the
	// first worker released sends data immediately, and a routed data
	// frame must not overtake another worker's GO on its connection.
	// Until the readers run, early frames just wait in socket buffers.
	start := time.Now()
	for _, c := range conns {
		if err := c.write(frameGo, nil); err != nil {
			return nil, fmt.Errorf("cluster: starting workers: %w", err)
		}
	}

	evCh := make(chan event, cfg.Procs*4)
	for rank, c := range conns {
		go readWorker(rank, c, conns, cfg.PerProc, evCh)
	}
	for rank, cmd := range cmds {
		go func(rank int, cmd *exec.Cmd) {
			evCh <- event{rank: rank, exit: true, err: cmd.Wait()}
		}(rank, cmd)
	}

	// The state machine: wait for rank 0's result, drain, collect every
	// rank's report. Any death or error before a rank has reported fails
	// the run; the deadline backstops a wedged cluster.
	res := &Result{Procs: cfg.Procs, PerProc: cfg.PerProc}
	reports := make([]*workerReport, cfg.Procs)
	// A rank is dead only once its READER has ended without a report: a
	// cleanly-exited worker's report may still be in flight (socket
	// buffer, reader goroutine) when cmd.Wait fires, so a bare exit
	// event must wait for the reader — which always ends promptly after
	// the process dies, because death closes the socket.
	readerEnded := make([]bool, cfg.Procs)
	exitSeen := make([]bool, cfg.Procs)
	exitErrs := make([]error, cfg.Procs)
	nReports := 0
	exited := 0
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	var runErr error

	died := func(rank int, reason string, err error) *faults.ProcessDeathError {
		return &faults.ProcessDeathError{
			Rank: rank, PEs: pesOf(rank, cfg.PerProc), Reason: reason, Err: err,
		}
	}

loop:
	for nReports < cfg.Procs {
		select {
		case <-timer.C:
			runErr = &faults.DeadlockError{Backend: "cluster", Reason: "deadline", Elapsed: time.Since(start)}
			break loop
		case ev := <-evCh:
			switch {
			case ev.exit:
				exited++
				exitSeen[ev.rank] = true
				exitErrs[ev.rank] = ev.err
				if readerEnded[ev.rank] && reports[ev.rank] == nil {
					runErr = died(ev.rank, "exit", ev.err)
					break loop
				}
			case ev.kind == 0 || ev.kind == frameBye: // reader finished
				readerEnded[ev.rank] = true
				if reports[ev.rank] == nil {
					switch {
					case exitSeen[ev.rank]:
						runErr = died(ev.rank, "exit", exitErrs[ev.rank])
					case ev.err != nil && ev.err != io.EOF:
						runErr = died(ev.rank, "connection error", ev.err)
					default:
						runErr = died(ev.rank, "connection closed", ev.err)
					}
					break loop
				}
			case ev.kind == frameResult:
				v, derr := wire.Decode(ev.body)
				if derr != nil {
					runErr = fmt.Errorf("cluster: decoding rank 0 result: %w", derr)
					break loop
				}
				res.Value = v
				// The result is in: drain the other ranks so they unwind
				// and report. Write failures mean the rank is already
				// dying; its reader or waiter will say so.
				for rank := 1; rank < cfg.Procs; rank++ {
					_ = conns[rank].write(frameDrain, nil)
				}
			case ev.kind == frameError:
				runErr = fmt.Errorf("cluster: rank %d failed: %s", ev.rank, ev.body)
				break loop
			case ev.kind == frameReport:
				var rep workerReport
				if derr := json.Unmarshal(ev.body, &rep); derr != nil {
					runErr = fmt.Errorf("cluster: rank %d report: %w", ev.rank, derr)
					break loop
				}
				if reports[ev.rank] == nil {
					reports[ev.rank] = &rep
					nReports++
				}
			}
		}
	}
	res.CoordNS = time.Since(start).Nanoseconds()
	foldReports(res, reports)
	if runErr != nil {
		killAll(cmds)
		return res, runErr
	}

	// Clean shutdown: give the drained workers a moment to exit, then
	// sweep up anything left.
	grace := time.NewTimer(10 * time.Second)
	defer grace.Stop()
	for exited < cfg.Procs {
		select {
		case ev := <-evCh:
			if ev.exit {
				exited++
			}
		case <-grace.C:
			killAll(cmds)
			return res, nil
		}
	}
	return res, nil
}

func boolEnv(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// killAll force-kills every still-running worker.
func killAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
}

// acceptWorkers collects one HELLO-identified connection per rank.
func acceptWorkers(ln net.Listener, procs int, deadline time.Duration) ([]*conn, error) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		_ = d.SetDeadline(time.Now().Add(deadline))
	}
	conns := make([]*conn, procs)
	for i := 0; i < procs; i++ {
		nc, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("cluster: waiting for workers (%d/%d connected): %w", i, procs, err)
		}
		_ = nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		c := newConn(nc)
		kind, body, err := c.read()
		if err != nil || kind != frameHello || len(body) != 4 {
			nc.Close()
			return nil, fmt.Errorf("cluster: bad hello (kind %d): %v", kind, err)
		}
		_ = nc.SetReadDeadline(time.Time{})
		rank := int(binary.LittleEndian.Uint32(body))
		if rank < 0 || rank >= procs || conns[rank] != nil {
			nc.Close()
			return nil, fmt.Errorf("cluster: hello from invalid or duplicate rank %d", rank)
		}
		conns[rank] = c
	}
	return conns, nil
}

// readWorker pumps one worker's connection: data frames are routed to
// the destination PE's owner, control frames go to the state machine,
// and a broken connection is reported as such.
func readWorker(rank int, c *conn, conns []*conn, perProc int, evCh chan<- event) {
	for {
		kind, body, err := c.read()
		if err != nil {
			evCh <- event{rank: rank, err: err}
			return
		}
		switch kind {
		case frameData:
			_, _, _, dst, _, derr := decodeData(body)
			if derr != nil {
				evCh <- event{rank: rank, err: derr}
				return
			}
			owner := 0
			if perProc > 0 {
				owner = dst / perProc
			}
			if owner >= 0 && owner < len(conns) && conns[owner] != nil {
				// A write failure means the destination is dying; its own
				// reader or process waiter reports the death, so the frame
				// is simply lost — exactly a severed link.
				_ = conns[owner].write(frameData, body)
			}
		case frameBye:
			evCh <- event{rank: rank, kind: kind}
			return
		default:
			evCh <- event{rank: rank, kind: kind, body: body}
		}
	}
}

// foldReports merges the per-rank reports into the global view: each
// rank owns its PE slots, totals sum, timelines concatenate in global
// PE order.
func foldReports(res *Result, reports []*workerReport) {
	res.PerPE = make([]nativeeden.PEStats, res.Procs*res.PerProc)
	res.Reports = make([]nativeeden.Report, res.Procs)
	var dumps []*eventlog.Dump
	for rank, rep := range reports {
		if rep == nil {
			continue
		}
		res.Reports[rank] = rep.Report
		for i := 0; i < res.PerProc; i++ {
			g := rank*res.PerProc + i
			if g < len(rep.Report.PerPE) {
				res.PerPE[g] = rep.Report.PerPE[g]
			}
		}
		res.Total.Messages += rep.Report.Total.Messages
		res.Total.BytesSent += rep.Report.Total.BytesSent
		res.Total.Processes += rep.Report.Total.Processes
		res.Total.ThreadsCreated += rep.Report.Total.ThreadsCreated
		res.GC.Cycles += rep.Report.GC.Cycles
		res.GC.PauseNS += rep.Report.GC.PauseNS
		res.GC.BytesAlloc += rep.Report.GC.BytesAlloc
		res.GC.Shared = res.GC.Shared || rep.Report.GC.Shared
		if rank == 0 {
			res.WallNS = rep.Report.WallNS
		}
		if rep.Dump != nil {
			dumps = append(dumps, rep.Dump)
		}
	}
	res.Timeline = mergeDumps(dumps)
}

// mergeDumps concatenates per-rank timeline dumps (already in rank
// order, agents named by global PE) into one cluster-wide dump.
func mergeDumps(dumps []*eventlog.Dump) *eventlog.Dump {
	if len(dumps) == 0 {
		return nil
	}
	out := &eventlog.Dump{Backend: "cluster"}
	for _, d := range dumps {
		out.Agents = append(out.Agents, d.Agents...)
		out.Events = append(out.Events, d.Events...)
		out.Dropped += d.Dropped
		if d.WallNS > out.WallNS {
			out.WallNS = d.WallNS
		}
	}
	return out
}
