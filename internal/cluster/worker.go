package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"time"

	"parhask/internal/eden/wire"
	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/nativeeden"
)

// Worker environment. The coordinator re-executes its own binary with
// these set; MaybeWorker turns that invocation into a cluster worker
// before the binary's normal main runs.
const (
	envRank      = "PARHASK_CLUSTER_RANK"
	envProcs     = "PARHASK_CLUSTER_PROCS"
	envPerProc   = "PARHASK_CLUSTER_PERPROC"
	envAddr      = "PARHASK_CLUSTER_ADDR"
	envTransport = "PARHASK_CLUSTER_TRANSPORT"
	envSpec      = "PARHASK_CLUSTER_SPEC"
	envFaults    = "PARHASK_CLUSTER_FAULTS"
	envEventLog  = "PARHASK_CLUSTER_EVENTLOG"
)

// killExitCode is the status a kill-rank fault exits with — distinct
// from both success and ordinary failure so tests can tell an injected
// death from a crash.
const killExitCode = 3

// MaybeWorker must be the first call in main() of every binary that
// can coordinate a cluster: if the process was launched as a cluster
// worker (PARHASK_CLUSTER_RANK is set) it runs the worker to
// completion and exits, never returning; otherwise it is a no-op.
func MaybeWorker() {
	if os.Getenv(envRank) == "" {
		return
	}
	if err := workerMain(); err != nil {
		fmt.Fprintf(os.Stderr, "cluster worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerReport is what each worker hands back over the control
// connection after its run: its rank's statistics and, when event
// logging is on, its PEs' timeline dump (agents named by global PE).
type workerReport struct {
	Rank    int               `json:"rank"`
	Report  nativeeden.Report `json:"report"`
	Dump    *eventlog.Dump    `json:"dump,omitempty"`
	Err     string            `json:"err,omitempty"`
	Drained bool              `json:"drained,omitempty"`
}

// starTransport ships a cluster data message as one frame to the
// coordinator, which routes it to the destination PE's owner.
type starTransport struct{ c *conn }

func (t *starTransport) SendRemote(kind nativeeden.MsgKind, chanID int64, src, dst int, payload []byte) error {
	return t.c.write(frameData, encodeData(kind, chanID, src, dst, payload))
}

func envInt(key string) (int, error) {
	v, err := strconv.Atoi(os.Getenv(key))
	if err != nil {
		return 0, fmt.Errorf("cluster: bad %s=%q: %w", key, os.Getenv(key), err)
	}
	return v, nil
}

func workerMain() error {
	rank, err := envInt(envRank)
	if err != nil {
		return err
	}
	procs, err := envInt(envProcs)
	if err != nil {
		return err
	}
	perProc, err := envInt(envPerProc)
	if err != nil {
		return err
	}
	network := os.Getenv(envTransport)
	if network != "tcp" && network != "unix" {
		return fmt.Errorf("cluster: bad %s=%q (want tcp or unix)", envTransport, network)
	}
	prog, _, err := BuildProgram(os.Getenv(envSpec))
	if err != nil {
		return err
	}
	plan, err := faults.Parse(os.Getenv(envFaults))
	if err != nil {
		return err
	}

	nc, err := net.Dial(network, os.Getenv(envAddr))
	if err != nil {
		return fmt.Errorf("cluster: rank %d dial %s: %w", rank, os.Getenv(envAddr), err)
	}
	c := newConn(nc)
	defer c.Close()

	var rankb [4]byte
	binary.LittleEndian.PutUint32(rankb[:], uint32(rank))
	if err := c.write(frameHello, rankb[:]); err != nil {
		return fmt.Errorf("cluster: rank %d hello: %w", rank, err)
	}
	kind, _, err := c.read()
	if err != nil || kind != frameGo {
		return fmt.Errorf("cluster: rank %d waiting for go: kind %d, %v", rank, kind, err)
	}

	// Self-applied cluster faults: a kill-rank clause makes this process
	// die abruptly mid-run (SIGKILL-equivalent from the cluster's view);
	// a sever-rank clause cuts its link while the process lives on. Both
	// must surface at the coordinator as *faults.ProcessDeathError.
	if plan != nil {
		if d, ok := plan.KillRank[rank]; ok {
			time.AfterFunc(d, func() { os.Exit(killExitCode) })
		}
		if d, ok := plan.SeverRank[rank]; ok {
			time.AfterFunc(d, func() { nc.Close() })
		}
	}

	cfg := nativeeden.Config{
		EventLog: os.Getenv(envEventLog) == "1",
		Cluster: &nativeeden.ClusterSpec{
			Rank: rank, Procs: procs, PerProc: perProc,
			Transport: &starTransport{c: c},
		},
	}
	if plan != nil {
		cfg.Faults = faults.NewInjector(plan)
	}
	rts, err := nativeeden.NewRTS(cfg)
	if err != nil {
		return err
	}

	// The reader drains the control connection for the whole run:
	// data frames deliver into the local PEs, drain unwinds the run,
	// and a lost coordinator aborts it.
	go func() {
		for {
			kind, body, err := c.read()
			if err != nil {
				rts.Fail(fmt.Errorf("cluster: rank %d lost coordinator: %w", rank, err))
				return
			}
			switch kind {
			case frameData:
				mk, chanID, src, dst, payload, derr := decodeData(body)
				if derr == nil {
					derr = rts.Deliver(mk, chanID, src, dst, payload)
				}
				if derr != nil {
					rts.Fail(derr)
				}
			case frameDrain:
				rts.Drain()
			case frameBye:
				return
			}
		}
	}()

	res, runErr := rts.RunMain(prog)
	drained := errors.Is(runErr, nativeeden.ErrDrained)

	rep := workerReport{Rank: rank, Drained: drained}
	if res != nil {
		rep.Report = res.Report()
		if res.Events != nil {
			agents := make([]string, perProc)
			for i := range agents {
				agents[i] = fmt.Sprintf("pe%d", rank*perProc+i)
			}
			rep.Dump = res.Events.Dump(agents)
		}
	}
	if runErr != nil && !drained {
		rep.Err = runErr.Error()
		if werr := c.write(frameError, []byte(runErr.Error())); werr != nil {
			return fmt.Errorf("cluster: rank %d reporting failure %v: %w", rank, runErr, werr)
		}
	} else if rank == 0 {
		payload, eerr := wire.Encode(res.Value)
		if eerr != nil {
			rep.Err = eerr.Error()
			if werr := c.write(frameError, []byte(eerr.Error())); werr != nil {
				return fmt.Errorf("cluster: rank 0 reporting encode failure %v: %w", eerr, werr)
			}
		} else if werr := c.write(frameResult, payload); werr != nil {
			return fmt.Errorf("cluster: rank 0 sending result: %w", werr)
		}
	}
	body, err := json.Marshal(&rep)
	if err != nil {
		return fmt.Errorf("cluster: rank %d marshalling report: %w", rank, err)
	}
	if err := c.write(frameReport, body); err != nil {
		return fmt.Errorf("cluster: rank %d sending report: %w", rank, err)
	}
	return c.write(frameBye, nil)
}
