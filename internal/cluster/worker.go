package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"parhask/internal/eden/wire"
	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/nativeeden"
)

// Worker environment. The coordinator re-executes its own binary with
// these set; MaybeWorker turns that invocation into a cluster worker
// before the binary's normal main runs.
const (
	envRank      = "PARHASK_CLUSTER_RANK"
	envProcs     = "PARHASK_CLUSTER_PROCS"
	envPerProc   = "PARHASK_CLUSTER_PERPROC"
	envAddr      = "PARHASK_CLUSTER_ADDR"
	envTransport = "PARHASK_CLUSTER_TRANSPORT"
	envSpec      = "PARHASK_CLUSTER_SPEC"
	envFaults    = "PARHASK_CLUSTER_FAULTS"
	envEventLog  = "PARHASK_CLUSTER_EVENTLOG"
	// envAttempt is the supervised restart attempt index (0 = first
	// run). Workers use it to rotate the fault seed and to skip the
	// one-shot rank fault classes on retries.
	envAttempt = "PARHASK_CLUSTER_ATTEMPT"
	// envReconnect ("1"/"0") tells the worker whether a broken
	// coordinator link should be redialled or is terminal.
	envReconnect = "PARHASK_CLUSTER_RECONNECT"
)

// killExitCode is the status a kill-rank fault exits with — distinct
// from both success and ordinary failure so tests can tell an injected
// death from a crash.
const killExitCode = 3

// Worker-side reconnection tuning: how long a worker keeps redialling
// a lost coordinator before giving up, the dial backoff bounds, and
// the retransmit-buffer cap (outgrowing it means the coordinator has
// stopped acking — a wedged star, not a slow one).
const (
	redialWindow      = 15 * time.Second
	redialBackoffMin  = 25 * time.Millisecond
	redialBackoffMax  = time.Second
	workerMaxUnacked  = 4096
	welcomeDeadline   = 5 * time.Second
	byeAckLinger      = 5 * time.Second
	byeAckPollEvery   = 2 * time.Millisecond
)

// MaybeWorker must be the first call in main() of every binary that
// can coordinate a cluster: if the process was launched as a cluster
// worker (PARHASK_CLUSTER_RANK is set) it runs the worker to
// completion and exits, never returning; otherwise it is a no-op.
func MaybeWorker() {
	if os.Getenv(envRank) == "" {
		return
	}
	if err := workerMain(); err != nil {
		fmt.Fprintf(os.Stderr, "cluster worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerReport is what each worker hands back over the control
// connection after its run: its rank's statistics and, when event
// logging is on, its PEs' timeline dump (agents named by global PE).
type workerReport struct {
	Rank       int               `json:"rank"`
	Report     nativeeden.Report `json:"report"`
	Dump       *eventlog.Dump    `json:"dump,omitempty"`
	Err        string            `json:"err,omitempty"`
	Drained    bool              `json:"drained,omitempty"`
	Reconnects int               `json:"reconnects,omitempty"`
}

// wlink is the worker's self-healing coordinator link. Writers block
// while the link is down and the reader owns redial: on a connection
// error it re-dials with exponential backoff inside redialWindow,
// re-HELLOs with its receive cursor, takes the coordinator's welcome
// (the coordinator's receive cursor), replays every sequenced frame
// the coordinator never acked, and only then wakes the writers. With
// reconnection disabled (or a sever-rank fault) the first break is
// terminal.
type wlink struct {
	rank          int
	network, addr string

	mu         sync.Mutex
	cond       *sync.Cond
	c          *conn // nil while down
	err        error // terminal: the link is gone for good
	reconnect  bool
	sendSeq    uint32
	unacked    []savedFrame
	lastRecv   uint32
	holdUntil  time.Time // flap-rank outage: no redial before this
	reconnects int

	// wedged simulates a worker whose link servicing died while the
	// process lives: reads, pongs and sends all stop.
	wedged atomic.Bool
}

func newWLink(rank int, network, addr string, reconnect bool) *wlink {
	l := &wlink{rank: rank, network: network, addr: addr, reconnect: reconnect}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// dial makes the initial connection and sends the joining HELLO.
func (l *wlink) dial() error {
	nc, err := net.Dial(l.network, l.addr)
	if err != nil {
		return fmt.Errorf("cluster: rank %d dial %s: %w", l.rank, l.addr, err)
	}
	c := newConn(nc)
	if err := c.write(frameHello, 0, encodeHello(l.rank, 0, 0)); err != nil {
		nc.Close()
		return fmt.Errorf("cluster: rank %d hello: %w", l.rank, err)
	}
	l.mu.Lock()
	l.c = c
	l.mu.Unlock()
	return nil
}

// current returns the live conn, or nil while the link is down.
func (l *wlink) current() *conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c
}

// stallIfWedged parks the calling goroutine forever once a wedge-rank
// fault has fired — the worker falls silent without dying.
func (l *wlink) stallIfWedged() {
	if l.wedged.Load() {
		select {}
	}
}

// write sends one frame. Sequenced frames are reliable: they enter the
// retransmit buffer before the first attempt, so a send that breaks
// mid-flight is simply replayed by the reader's redial — the caller
// sees success, exactly-once delivery is the seq/ack layer's job.
// Unsequenced frames are best-effort. Returns the terminal link error
// once the link is gone for good.
func (l *wlink) write(kind byte, body []byte) error {
	l.stallIfWedged()
	isSeq := sequenced(kind)
	l.mu.Lock()
	for l.c == nil && l.err == nil {
		l.cond.Wait()
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	c := l.c
	var seq uint32
	if isSeq {
		l.sendSeq++
		seq = l.sendSeq
		l.unacked = append(l.unacked, savedFrame{seq: seq, kind: kind, body: body})
		if len(l.unacked) > workerMaxUnacked {
			err := fmt.Errorf("cluster: rank %d: %d frames unacked, coordinator not acking", l.rank, len(l.unacked))
			l.err = err
			l.cond.Broadcast()
			l.mu.Unlock()
			c.Close()
			return err
		}
		// Sequenced frames must hit the socket in seq order, so the
		// write happens under the link lock; senders racing here would
		// otherwise interleave as receive-side sequence gaps.
		werr := c.write(kind, seq, body)
		l.mu.Unlock()
		if werr != nil {
			l.broken(c, werr)
			l.mu.Lock()
			terr := l.err
			l.mu.Unlock()
			return terr // nil when the redial will replay it
		}
		return nil
	}
	l.mu.Unlock()
	if err := c.write(kind, seq, body); err != nil {
		l.broken(c, err)
		l.mu.Lock()
		terr := l.err
		l.mu.Unlock()
		if terr != nil {
			return terr
		}
		// Sequenced: the redial replays it. Unsequenced: pings and acks
		// are periodic, losing one is fine.
		return nil
	}
	return nil
}

// broken marks c dead. The reader owns redial; writers just step
// aside. With reconnection off the first break is the terminal error.
func (l *wlink) broken(c *conn, err error) {
	c.Close()
	l.mu.Lock()
	if l.c == c {
		l.c = nil
	}
	if !l.reconnect && l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// failTerminal records the link's final error and wakes every waiter.
func (l *wlink) failTerminal(err error) error {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	err = l.err
	l.cond.Broadcast()
	l.mu.Unlock()
	return err
}

// sever is the sever-rank fault: cut the link and refuse to heal it.
func (l *wlink) sever() {
	l.mu.Lock()
	l.reconnect = false
	c := l.c
	l.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// flap is the flap-rank fault: drop the link now, stay dark for down,
// then let the normal redial path heal it.
func (l *wlink) flap(down time.Duration) {
	l.mu.Lock()
	l.holdUntil = time.Now().Add(down)
	c := l.c
	l.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// redial reconnects after a link failure; only the reader calls it.
// failed is the conn whose read broke (nil when the reader found the
// link already down) — it must be retired here, because if no writer
// has tripped over it yet it is still installed, and trusting l.c
// would hand the same dead conn straight back. Returns the new conn,
// or the terminal error once the link is gone for good (reconnection
// disabled, or the window exhausted).
func (l *wlink) redial(failed *conn, cause error) (*conn, error) {
	if failed != nil {
		failed.Close() // a remote break leaves the local fd open
	}
	l.mu.Lock()
	if l.c == failed && failed != nil {
		l.c = nil
	}
	if !l.reconnect || l.err != nil {
		l.mu.Unlock()
		return nil, l.failTerminal(cause)
	}
	if l.c != nil {
		// A writer already failed over to a new conn? It cannot — only
		// redial installs conns — so a non-nil conn here means the error
		// raced a fresh install; use it.
		c := l.c
		l.mu.Unlock()
		return c, nil
	}
	hold := l.holdUntil
	l.mu.Unlock()
	if d := time.Until(hold); d > 0 {
		time.Sleep(d)
	}
	backoff := redialBackoffMin
	deadline := time.Now().Add(redialWindow)
	for {
		nc, derr := net.Dial(l.network, l.addr)
		if derr == nil {
			c, rerr := l.resume(nc)
			if rerr == nil {
				return c, nil
			}
		}
		l.mu.Lock()
		healable := l.reconnect && l.err == nil
		l.mu.Unlock()
		if !healable || time.Now().After(deadline) {
			return nil, l.failTerminal(fmt.Errorf("cluster: rank %d could not reconnect: %w", l.rank, cause))
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > redialBackoffMax {
			backoff = redialBackoffMax
		}
	}
}

// resume performs the reconnect handshake on a freshly-dialled socket:
// re-HELLO with our receive cursor, read the welcome, trim and replay
// the retransmit buffer, install the conn, wake the writers.
func (l *wlink) resume(nc net.Conn) (*conn, error) {
	c := newConn(nc)
	l.mu.Lock()
	lastRecv := l.lastRecv
	l.mu.Unlock()
	if err := c.write(frameHello, 0, encodeHello(l.rank, helloFlagReconnect, lastRecv)); err != nil {
		nc.Close()
		return nil, err
	}
	_ = nc.SetReadDeadline(time.Now().Add(welcomeDeadline))
	kind, _, body, err := c.read()
	if err != nil || kind != frameWelcome {
		nc.Close()
		return nil, fmt.Errorf("cluster: rank %d waiting for welcome: kind %d, %v", l.rank, kind, err)
	}
	_ = nc.SetReadDeadline(time.Time{})
	coordRecv, err := decodeSeq(body)
	if err != nil {
		nc.Close()
		return nil, err
	}
	l.mu.Lock()
	l.unacked = trimAcked(l.unacked, coordRecv)
	for _, f := range l.unacked {
		if werr := c.write(f.kind, f.seq, f.body); werr != nil {
			l.mu.Unlock()
			nc.Close()
			return nil, werr
		}
	}
	l.c = c
	l.reconnects++
	l.cond.Broadcast()
	l.mu.Unlock()
	return c, nil
}

// accept applies receive-side sequencing to an incoming frame:
// process reports whether to handle it (false for a replayed
// duplicate), ackNow whether the cumulative ack is due, and err a
// protocol violation (a gap can only mean a broken retransmit layer).
func (l *wlink) accept(seq uint32) (process, ackNow bool, err error) {
	if seq == 0 {
		return true, false, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case seq <= l.lastRecv:
		return false, false, nil
	case seq != l.lastRecv+1:
		return false, false, fmt.Errorf("cluster: rank %d: sequence gap (frame %d after %d)", l.rank, seq, l.lastRecv)
	}
	l.lastRecv = seq
	return true, l.lastRecv%ackEvery == 0, nil
}

// ackSent trims the retransmit buffer by the peer's cumulative ack.
func (l *wlink) ackSent(seq uint32) {
	l.mu.Lock()
	l.unacked = trimAcked(l.unacked, seq)
	l.mu.Unlock()
}

// recvCursor is the highest sequenced frame processed so far.
func (l *wlink) recvCursor() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastRecv
}

// awaitAcked lingers until the coordinator has acked everything (the
// report and bye, in practice), the link died, or the timeout passed.
// Exiting with the report unacked risks the coordinator reading a
// death instead of a result.
func (l *wlink) awaitAcked(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		l.mu.Lock()
		n, dead := len(l.unacked), l.err != nil
		l.mu.Unlock()
		if n == 0 || dead || time.Now().After(deadline) {
			return
		}
		time.Sleep(byeAckPollEvery)
	}
}

// starTransport ships a cluster data message as one frame to the
// coordinator, which routes it to the destination PE's owner.
type starTransport struct{ l *wlink }

func (t *starTransport) SendRemote(kind nativeeden.MsgKind, chanID int64, src, dst int, payload []byte) error {
	return t.l.write(frameData, encodeData(kind, chanID, src, dst, payload))
}

func envInt(key string) (int, error) {
	v, err := strconv.Atoi(os.Getenv(key))
	if err != nil {
		return 0, fmt.Errorf("cluster: bad %s=%q: %w", key, os.Getenv(key), err)
	}
	return v, nil
}

// seedRotate derives attempt k's fault seed from the plan's: each
// supervised retry sees the same fault *classes* but a fresh
// probabilistic pattern, so a run killed by an unlucky seed is not
// condemned to the identical death forever.
func seedRotate(seed uint64, attempt int) uint64 {
	return seed + uint64(attempt)*0x9e3779b97f4a7c15
}

func workerMain() error {
	rank, err := envInt(envRank)
	if err != nil {
		return err
	}
	procs, err := envInt(envProcs)
	if err != nil {
		return err
	}
	perProc, err := envInt(envPerProc)
	if err != nil {
		return err
	}
	network := os.Getenv(envTransport)
	if network != "tcp" && network != "unix" {
		return fmt.Errorf("cluster: bad %s=%q (want tcp or unix)", envTransport, network)
	}
	prog, _, err := BuildProgram(os.Getenv(envSpec))
	if err != nil {
		return err
	}
	plan, err := faults.Parse(os.Getenv(envFaults))
	if err != nil {
		return err
	}
	attempt := 0
	if v := os.Getenv(envAttempt); v != "" {
		if attempt, err = envInt(envAttempt); err != nil {
			return err
		}
	}
	reconnect := os.Getenv(envReconnect) == "1"

	l := newWLink(rank, network, os.Getenv(envAddr), reconnect)
	if err := l.dial(); err != nil {
		return err
	}
	c0 := l.current()
	kind, _, _, err := c0.read()
	if err != nil || kind != frameGo {
		return fmt.Errorf("cluster: rank %d waiting for go: kind %d, %v", rank, kind, err)
	}

	// Self-applied cluster faults: kill-rank dies abruptly mid-run,
	// sever-rank cuts the link for good, flap-rank cuts it transiently
	// (the redial heals it), wedge-rank goes silent without dying. The
	// one-shot classes fire on the first attempt only unless the plan
	// says rank-faults=every — a restart budget must be able to win.
	if plan != nil {
		if attempt > 0 {
			plan.Seed = seedRotate(plan.Seed, attempt)
		}
		if attempt == 0 || plan.RankEvery {
			if d, ok := plan.KillRank[rank]; ok {
				time.AfterFunc(d, func() { os.Exit(killExitCode) })
			}
			if d, ok := plan.SeverRank[rank]; ok {
				time.AfterFunc(d, func() { l.sever() })
			}
			if r, ok := plan.FlapRank[rank]; ok {
				down := r.Down
				time.AfterFunc(r.At, func() { l.flap(down) })
			}
			if d, ok := plan.WedgeRank[rank]; ok {
				time.AfterFunc(d, func() { l.wedged.Store(true) })
			}
		}
	}

	cfg := nativeeden.Config{
		EventLog: os.Getenv(envEventLog) == "1",
		Cluster: &nativeeden.ClusterSpec{
			Rank: rank, Procs: procs, PerProc: perProc,
			Transport: &starTransport{l: l},
		},
	}
	if plan != nil {
		cfg.Faults = faults.NewInjector(plan)
	}
	rts, err := nativeeden.NewRTS(cfg)
	if err != nil {
		return err
	}

	// Graceful shutdown: the coordinator's terminate path sends SIGTERM
	// before SIGKILL; draining lets this worker flush its report and
	// eventlog instead of dying mid-write.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		if _, ok := <-sigCh; ok {
			rts.Drain()
		}
	}()

	// The reader drains the control connection for the whole run: data
	// frames deliver into the local PEs, drain unwinds the run, pings
	// are answered, acks trim the retransmit buffer — and a broken
	// connection triggers the redial instead of aborting, unless the
	// link is terminally gone.
	go func() {
		for {
			c := l.current()
			if c == nil {
				var rerr error
				if c, rerr = l.redial(nil, errors.New("connection reset")); rerr != nil {
					rts.Fail(fmt.Errorf("cluster: rank %d lost coordinator: %w", rank, rerr))
					return
				}
			}
			kind, seq, body, err := c.read()
			if err != nil {
				var rerr error
				if _, rerr = l.redial(c, err); rerr != nil {
					rts.Fail(fmt.Errorf("cluster: rank %d lost coordinator: %w", rank, rerr))
					return
				}
				continue
			}
			l.stallIfWedged()
			process, ackNow, serr := l.accept(seq)
			if serr != nil {
				rts.Fail(serr)
				return
			}
			if ackNow {
				_ = c.write(frameAck, 0, encodeSeq(seq))
			}
			if !process {
				continue
			}
			switch kind {
			case frameData:
				mk, chanID, src, dst, payload, derr := decodeData(body)
				if derr == nil {
					derr = rts.Deliver(mk, chanID, src, dst, payload)
				}
				if derr != nil {
					rts.Fail(derr)
				}
			case frameDrain:
				rts.Drain()
			case framePing:
				nanos, ack, perr := decodePing(body)
				if perr == nil {
					l.ackSent(ack)
					_ = c.write(framePong, 0, encodePing(nanos, l.recvCursor()))
				}
			case frameAck:
				if s, aerr := decodeSeq(body); aerr == nil {
					l.ackSent(s)
				}
			}
		}
	}()

	res, runErr := rts.RunMain(prog)
	drained := errors.Is(runErr, nativeeden.ErrDrained)

	rep := workerReport{Rank: rank, Drained: drained}
	if res != nil {
		rep.Report = res.Report()
		if res.Events != nil {
			agents := make([]string, perProc)
			for i := range agents {
				agents[i] = fmt.Sprintf("pe%d", rank*perProc+i)
			}
			rep.Dump = res.Events.Dump(agents)
		}
	}
	l.mu.Lock()
	rep.Reconnects = l.reconnects
	l.mu.Unlock()
	if runErr != nil && !drained {
		rep.Err = runErr.Error()
		if werr := l.write(frameError, encodeWorkerError(runErr)); werr != nil {
			return fmt.Errorf("cluster: rank %d reporting failure %v: %w", rank, runErr, werr)
		}
	} else if rank == 0 {
		payload, eerr := wire.Encode(res.Value)
		if eerr != nil {
			rep.Err = eerr.Error()
			if werr := l.write(frameError, encodeWorkerError(eerr)); werr != nil {
				return fmt.Errorf("cluster: rank 0 reporting encode failure %v: %w", eerr, werr)
			}
		} else if werr := l.write(frameResult, payload); werr != nil {
			return fmt.Errorf("cluster: rank 0 sending result: %w", werr)
		}
	}
	body, err := json.Marshal(&rep)
	if err != nil {
		return fmt.Errorf("cluster: rank %d marshalling report: %w", rank, err)
	}
	if err := l.write(frameReport, body); err != nil {
		return fmt.Errorf("cluster: rank %d sending report: %w", rank, err)
	}
	if err := l.write(frameBye, nil); err != nil {
		return err
	}
	l.awaitAcked(byeAckLinger)
	return nil
}
