package cluster

import (
	"fmt"
	"strings"
	"time"

	"parhask/internal/trace"
)

// CheckFlags is the shared fail-fast validation of the -cluster,
// -transport and -restarts CLI flags. procs == 0 means cluster mode is
// off (the default) and then only -restarts is checked (it needs a
// cluster to mean anything); otherwise the run must be on the native
// Eden runtime (the simulated runtimes have no processes to
// distribute, and the work-stealing native runtime has one shared
// heap), the process count must be positive, and the transport must be
// one Run knows. Returning an error before anything launches is the
// point: a bad flag must not cost a cluster spin-up.
func CheckFlags(rtKind string, procs int, transport string, restarts int) error {
	if restarts < 0 {
		return fmt.Errorf("-restarts %d: the restart budget must be non-negative", restarts)
	}
	if procs == 0 {
		if restarts > 0 {
			return fmt.Errorf("-restarts needs -cluster: only cluster runs have worker processes to respawn")
		}
		return nil
	}
	if procs < 0 {
		return fmt.Errorf("-cluster %d: the worker-process count must be at least 1", procs)
	}
	if rtKind != "eden" {
		return fmt.Errorf("-cluster requires -runtime eden (got -runtime %s)", rtKind)
	}
	if transport != "tcp" && transport != "unix" {
		return fmt.Errorf("-transport %s: unknown transport (want tcp or unix)", transport)
	}
	return nil
}

// RecoverySummary renders the run's self-healing activity for the
// CLIs — restarts with their attempt history, in-place reconnects,
// and the recovery latency. Empty when the run needed none, so callers
// can print it unconditionally.
func (r *Result) RecoverySummary() string {
	if r.Restarts == 0 && r.Reconnects == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "recovery = %d restarts, %d reconnects", r.Restarts, r.Reconnects)
	if r.RecoveryNS > 0 {
		fmt.Fprintf(&sb, ", recovered in %v", time.Duration(r.RecoveryNS).Round(time.Millisecond))
	}
	if r.ReconnectNS > 0 {
		fmt.Fprintf(&sb, ", links down %v total", time.Duration(r.ReconnectNS).Round(time.Millisecond))
	}
	sb.WriteByte('\n')
	for _, a := range r.Attempts {
		fmt.Fprintf(&sb, "  attempt %d: rank %d died (%s) after %v, backed off %v\n",
			a.Attempt, a.Rank, a.Reason,
			time.Duration(a.WallNS).Round(time.Millisecond),
			time.Duration(a.BackoffNS).Round(time.Millisecond))
	}
	return sb.String()
}

// TraceLog converts the merged cluster timeline back into a renderable
// wall-clock trace, one lane per global PE. Nil if the run did not
// record events.
func (r *Result) TraceLog() (*trace.Log, error) {
	if r.Timeline == nil {
		return nil, nil
	}
	lg, err := r.Timeline.Log()
	if err != nil {
		return nil, err
	}
	return lg.TraceAgents(r.Timeline.Agents), nil
}
