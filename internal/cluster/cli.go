package cluster

import (
	"fmt"

	"parhask/internal/trace"
)

// CheckFlags is the shared fail-fast validation of the -cluster and
// -transport CLI flags. procs == 0 means cluster mode is off (the
// default) and nothing else is checked; otherwise the run must be on
// the native Eden runtime (the simulated runtimes have no processes to
// distribute, and the work-stealing native runtime has one shared
// heap), the process count must be positive, and the transport must be
// one Run knows. Returning an error before anything launches is the
// point: a bad flag must not cost a cluster spin-up.
func CheckFlags(rtKind string, procs int, transport string) error {
	if procs == 0 {
		return nil
	}
	if procs < 0 {
		return fmt.Errorf("-cluster %d: the worker-process count must be at least 1", procs)
	}
	if rtKind != "eden" {
		return fmt.Errorf("-cluster requires -runtime eden (got -runtime %s)", rtKind)
	}
	if transport != "tcp" && transport != "unix" {
		return fmt.Errorf("-transport %s: unknown transport (want tcp or unix)", transport)
	}
	return nil
}

// TraceLog converts the merged cluster timeline back into a renderable
// wall-clock trace, one lane per global PE. Nil if the run did not
// record events.
func (r *Result) TraceLog() (*trace.Log, error) {
	if r.Timeline == nil {
		return nil, nil
	}
	lg, err := r.Timeline.Log()
	if err != nil {
		return nil, err
	}
	return lg.TraceAgents(r.Timeline.Agents), nil
}
