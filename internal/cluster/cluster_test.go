package cluster

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"parhask/internal/faults"
)

// TestMain makes the test binary cluster-capable: when the coordinator
// under test re-executes it with the worker environment set,
// MaybeWorker runs the worker and exits instead of running the tests
// again.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

func runOK(t *testing.T, cfg Config) *Result {
	t.Helper()
	if cfg.Deadline == 0 {
		cfg.Deadline = 60 * time.Second
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	_, oracle, err := BuildProgram(cfg.Spec)
	if err != nil {
		t.Fatalf("BuildProgram(%q): %v", cfg.Spec, err)
	}
	if err := oracle(res.Value); err != nil {
		t.Fatalf("cluster result fails the oracle: %v", err)
	}
	return res
}

func TestClusterSumEulerTCP(t *testing.T) {
	res := runOK(t, Config{
		Procs: 3, PerProc: 2, Transport: "tcp",
		Spec: "sumeuler?n=1500&chunks=2", EventLog: true,
	})
	if res.Total.Messages == 0 || res.Total.BytesSent == 0 {
		t.Fatalf("no cross-PE traffic counted: %+v", res.Total)
	}
	if len(res.PerPE) != 6 {
		t.Fatalf("PerPE has %d slots, want 6", len(res.PerPE))
	}
	if res.Timeline == nil {
		t.Fatal("EventLog requested but Timeline is nil")
	}
	if len(res.Timeline.Agents) != 6 {
		t.Fatalf("timeline has agents %v, want 6 global PEs", res.Timeline.Agents)
	}
	for i, a := range res.Timeline.Agents {
		if want := "pe" + string(rune('0'+i)); a != want {
			t.Fatalf("timeline agent %d = %q, want %q", i, a, want)
		}
	}
	if res.WallNS <= 0 {
		t.Fatalf("rank 0 wall time %d", res.WallNS)
	}
}

func TestClusterAPSPUnix(t *testing.T) {
	res := runOK(t, Config{
		Procs: 3, PerProc: 1, Transport: "unix",
		Spec: "apsp?n=24&ring=3&seed=7",
	})
	// The ring sends row blocks around every process boundary; silence
	// would mean the run never left one process.
	if res.Total.Messages == 0 {
		t.Fatal("APSP ring moved no messages between processes")
	}
}

func TestClusterMatmulTCP(t *testing.T) {
	runOK(t, Config{
		Procs: 2, PerProc: 2, Transport: "tcp",
		Spec: "matmul?n=16&q=2&seed=1",
	})
}

func TestClusterKillRank(t *testing.T) {
	// Rank 1 kills itself mid-run. The coordinator must come back with a
	// structured ProcessDeathError naming the rank and its PEs — and
	// come back promptly, not by deadline.
	start := time.Now()
	_, err := Run(Config{
		Procs: 3, PerProc: 2, Transport: "tcp",
		Spec:     "sumeuler?n=4000&chunks=4",
		Faults:   "kill-rank=1:30ms",
		Deadline: 60 * time.Second,
	})
	if err == nil {
		t.Fatal("killed worker, but Run returned no error")
	}
	var pd *faults.ProcessDeathError
	if !errors.As(err, &pd) {
		t.Fatalf("want *faults.ProcessDeathError, got %T: %v", err, err)
	}
	if pd.Rank != 1 {
		t.Fatalf("death reported for rank %d, want 1", pd.Rank)
	}
	if len(pd.PEs) != 2 || pd.PEs[0] != 2 || pd.PEs[1] != 3 {
		t.Fatalf("death reports PEs %v, want [2 3]", pd.PEs)
	}
	if !faults.IsStructured(err) {
		t.Fatalf("process death not recognised as structured: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("took %v to notice a dead worker", elapsed)
	}
}

func TestClusterSeverRank(t *testing.T) {
	// Rank 2's link is cut while its process lives on. The coordinator
	// sees the closed connection and reports the same fault class.
	_, err := Run(Config{
		Procs: 3, PerProc: 1, Transport: "unix",
		Spec:     "sumeuler?n=4000&chunks=4",
		Faults:   "sever-rank=2:30ms",
		Deadline: 60 * time.Second,
	})
	if err == nil {
		t.Fatal("severed link, but Run returned no error")
	}
	var pd *faults.ProcessDeathError
	if !errors.As(err, &pd) {
		t.Fatalf("want *faults.ProcessDeathError, got %T: %v", err, err)
	}
	if pd.Rank != 2 {
		t.Fatalf("death reported for rank %d, want 2", pd.Rank)
	}
	if !strings.HasPrefix(pd.Reason, "connection") {
		t.Fatalf("severed link reported as %q, want a connection reason", pd.Reason)
	}
}

func TestClusterSingleProcess(t *testing.T) {
	// Procs=1 is a legal degenerate cluster: one worker process, no
	// cross-process traffic, same protocol.
	res := runOK(t, Config{
		Procs: 1, PerProc: 4, Transport: "tcp",
		Spec: "sumeuler?n=1000&chunks=2",
	})
	if len(res.PerPE) != 4 {
		t.Fatalf("PerPE has %d slots, want 4", len(res.PerPE))
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Procs: 0, PerProc: 1, Transport: "tcp", Spec: "sumeuler"},
		{Procs: 2, PerProc: 0, Transport: "tcp", Spec: "sumeuler"},
		{Procs: 2, PerProc: 1, Transport: "carrier-pigeon", Spec: "sumeuler"},
		{Procs: 2, PerProc: 1, Transport: "tcp", Spec: "quicksort"},
		{Procs: 2, PerProc: 1, Transport: "tcp", Spec: "sumeuler?n=2000;chunks=2"},
		{Procs: 2, PerProc: 1, Transport: "tcp", Spec: "sumeuler", Faults: "kill-rank=1"},
		// Bad workload geometry must be a Validate error, not a panic
		// out of an eager program constructor.
		{Procs: 2, PerProc: 1, Transport: "tcp", Spec: "matmul?n=16&q=3"},
		{Procs: 2, PerProc: 1, Transport: "tcp", Spec: "matmul?n=16&q=0"},
		{Procs: 2, PerProc: 1, Transport: "tcp", Spec: "apsp?n=16&ring=0"},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a bad config", cfg)
		}
	}
	good := Config{Procs: 2, PerProc: 2, Transport: "unix", Spec: "apsp?n=16&ring=2", Faults: "kill-rank=0:5ms"}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v): %v", good, err)
	}
}

func TestBuildProgramSpecs(t *testing.T) {
	for _, spec := range []string{"sumeuler", "sumeuler?n=500&chunks=3", "apsp?n=12&ring=2&seed=3", "matmul?n=8&q=2"} {
		prog, oracle, err := BuildProgram(spec)
		if err != nil {
			t.Fatalf("BuildProgram(%q): %v", spec, err)
		}
		if prog == nil || oracle == nil {
			t.Fatalf("BuildProgram(%q) returned nil parts", spec)
		}
	}
	if _, _, err := BuildProgram("unknown?x=1"); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("unknown workload error = %v", err)
	}
}
