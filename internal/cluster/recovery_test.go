package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"parhask/internal/faults"
	"parhask/internal/metrics"
)

// superviseOK runs cfg under RunSupervised and gates the result on the
// workload's oracle — the recovery tests all demand oracle-equal
// results, not merely "something came back".
func superviseOK(t *testing.T, cfg Config) *Result {
	t.Helper()
	if cfg.Deadline == 0 {
		cfg.Deadline = 60 * time.Second
	}
	res, err := RunSupervised(cfg)
	if err != nil {
		t.Fatalf("RunSupervised: %v", err)
	}
	_, oracle, err := BuildProgram(cfg.Spec)
	if err != nil {
		t.Fatalf("BuildProgram(%q): %v", cfg.Spec, err)
	}
	if err := oracle(res.Value); err != nil {
		t.Fatalf("recovered result fails the oracle: %v", err)
	}
	return res
}

func TestClusterRespawnAfterKill(t *testing.T) {
	// Rank 1 kills itself mid-run; the supervisor respawns the cluster
	// and the retry — with the one-shot fault spent — must produce the
	// oracle-equal result, with the death on the attempt history.
	for _, transport := range []string{"tcp", "unix"} {
		t.Run(transport, func(t *testing.T) {
			reg := metrics.New()
			res := superviseOK(t, Config{
				Procs: 3, PerProc: 2, Transport: transport,
				Spec:    "sumeuler?n=4000&chunks=4",
				Faults:  "kill-rank=1:30ms",
				Restart: &Restart{Max: 2, Backoff: 30 * time.Millisecond},
				Metrics: reg,
			})
			if res.Restarts != 1 {
				t.Fatalf("Restarts = %d, want 1 (one kill, one respawn)", res.Restarts)
			}
			if len(res.Attempts) != 1 {
				t.Fatalf("attempt history %+v, want one failed attempt", res.Attempts)
			}
			a := res.Attempts[0]
			if a.Rank != 1 || a.Attempt != 0 {
				t.Fatalf("attempt history blames rank %d attempt %d, want rank 1 attempt 0", a.Rank, a.Attempt)
			}
			if a.WallNS <= 0 || a.BackoffNS <= 0 {
				t.Fatalf("attempt timings missing: %+v", a)
			}
			if res.RecoveryNS <= 0 {
				t.Fatalf("RecoveryNS = %d, want > 0 after a recovery", res.RecoveryNS)
			}
			if got := reg.Counters()["cluster_restarts_total"]; got != 1 {
				t.Fatalf("cluster_restarts_total = %v, want 1", got)
			}
		})
	}
}

func TestClusterReconnectAfterFlap(t *testing.T) {
	// Rank 1's link drops for 80ms mid-run and the worker redials. The
	// run must ride it out in place: no restart, at least one accepted
	// reconnect, oracle-equal result (the seq/ack replay means no frame
	// was lost or doubled across the outage).
	for _, transport := range []string{"tcp", "unix"} {
		t.Run(transport, func(t *testing.T) {
			reg := metrics.New()
			res := runOK(t, Config{
				Procs: 3, PerProc: 2, Transport: transport,
				Spec:     "sumeuler?n=8000&chunks=8",
				Faults:   "flap-rank=1:20ms:80ms",
				EventLog: true,
				Metrics:  reg,
				// Wide window: a loaded -race machine can starve the worker's
				// redial loop well past the 3s default, and this test is about
				// the replay protocol, not the scheduler's latency.
				ReconnectWindow: 20 * time.Second,
			})
			if res.Reconnects < 1 {
				t.Fatalf("Reconnects = %d, want >= 1 after a link flap", res.Reconnects)
			}
			if res.Restarts != 0 {
				t.Fatalf("a flap must heal in place, got %d restarts", res.Restarts)
			}
			if res.ReconnectNS <= 0 {
				t.Fatalf("ReconnectNS = %d, want > 0 (the outage had width)", res.ReconnectNS)
			}
			if got := reg.Counters()["cluster_reconnects_total"]; got < 1 {
				t.Fatalf("cluster_reconnects_total = %v, want >= 1", got)
			}
			// The merged timeline gains the coordinator's recovery lane
			// bracketing the outage.
			if res.Timeline == nil {
				t.Fatal("EventLog requested but Timeline is nil")
			}
			last := len(res.Timeline.Agents) - 1
			if last < 0 || res.Timeline.Agents[last] != "coord" {
				t.Fatalf("timeline agents %v missing the coord recovery lane", res.Timeline.Agents)
			}
			lane := res.Timeline.Events[last]
			if len(lane) < 2 || lane[0].Type != "block-begin" || lane[len(lane)-1].Type != "block-end" {
				t.Fatalf("coord lane %+v does not bracket the outage", lane)
			}
		})
	}
}

func TestClusterRestartBudgetExhausted(t *testing.T) {
	// rank-faults=every makes the kill recur on every attempt, so a
	// budget of one restart must fail with the full attempt history and
	// still expose the underlying structured death.
	_, err := RunSupervised(Config{
		Procs: 3, PerProc: 1, Transport: "tcp",
		Spec:     "sumeuler?n=4000&chunks=4",
		Faults:   "kill-rank=1:30ms,rank-faults=every",
		Restart:  &Restart{Max: 1, Backoff: 20 * time.Millisecond},
		Deadline: 60 * time.Second,
	})
	if err == nil {
		t.Fatal("recurring kill with a budget of 1 restart should fail")
	}
	var ex *RestartsExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want *RestartsExhaustedError, got %T: %v", err, err)
	}
	if len(ex.Attempts) != 2 {
		t.Fatalf("attempt history has %d entries, want 2 (initial + 1 restart): %+v", len(ex.Attempts), ex.Attempts)
	}
	for i, a := range ex.Attempts {
		if a.Attempt != i || a.Rank != 1 {
			t.Fatalf("attempt %d recorded as %+v", i, a)
		}
	}
	var pd *faults.ProcessDeathError
	if !errors.As(err, &pd) || pd.Rank != 1 {
		t.Fatalf("exhausted budget should still unwrap to the process death, got %v", err)
	}
	if !faults.IsStructured(err) {
		t.Fatalf("budget exhaustion not recognised as structured: %v", err)
	}
}

func TestClusterWedgeHeartbeat(t *testing.T) {
	// Rank 1 wedges — the process lives, the socket stays open, it just
	// stops talking. Only the heartbeat can see that; the death must say
	// so, and come promptly (4 missed beats), not by deadline.
	start := time.Now()
	_, err := Run(Config{
		Procs: 3, PerProc: 1, Transport: "tcp",
		Spec:      "sumeuler?n=4000&chunks=4",
		Faults:    "wedge-rank=1:30ms",
		Heartbeat: 100 * time.Millisecond,
		Deadline:  60 * time.Second,
	})
	if err == nil {
		t.Fatal("wedged worker, but Run returned no error")
	}
	var pd *faults.ProcessDeathError
	if !errors.As(err, &pd) {
		t.Fatalf("want *faults.ProcessDeathError, got %T: %v", err, err)
	}
	if pd.Rank != 1 {
		t.Fatalf("death reported for rank %d, want 1", pd.Rank)
	}
	if pd.Reason != "heartbeat timeout" {
		t.Fatalf("wedge reported as %q, want heartbeat timeout", pd.Reason)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("took %v to notice a wedged worker", elapsed)
	}
}

func TestClusterWedgeSupervisedRecovers(t *testing.T) {
	// A supervised run turns the same wedge into a recovery: the wedge
	// is one-shot, so the respawned attempt completes oracle-equal.
	res := superviseOK(t, Config{
		Procs: 3, PerProc: 1, Transport: "tcp",
		Spec:      "sumeuler?n=4000&chunks=4",
		Faults:    "wedge-rank=1:30ms",
		Heartbeat: 100 * time.Millisecond,
		Restart:   &Restart{Max: 2, Backoff: 30 * time.Millisecond},
	})
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", res.Restarts)
	}
	if res.Attempts[0].Reason != "heartbeat timeout" {
		t.Fatalf("attempt reason %q, want heartbeat timeout", res.Attempts[0].Reason)
	}
}

func TestClusterStructuredErrorAcrossFrames(t *testing.T) {
	// A worker whose run dies of an injected panic must surface that
	// exact structured class on the coordinator's error — the frameError
	// envelope carries the type across the process boundary.
	_, err := Run(Config{
		Procs: 2, PerProc: 2, Transport: "tcp",
		Spec:     "sumeuler?n=2000&chunks=4",
		Faults:   "seed=7,panic-proc=0",
		Deadline: 60 * time.Second,
	})
	if err == nil {
		t.Fatal("injected panic, but Run returned no error")
	}
	var ip *faults.InjectedPanic
	if !errors.As(err, &ip) {
		t.Fatalf("injected panic did not survive the wire: %T: %v", err, err)
	}
	if ip.Kind != "proc" || ip.Seed != 7 {
		t.Fatalf("injected panic fields lost in transit: %+v", ip)
	}
	if !faults.IsStructured(err) {
		t.Fatalf("wire-crossed panic not recognised as structured: %v", err)
	}
	if !strings.Contains(err.Error(), "rank") {
		t.Fatalf("coordinator error %q does not name the failing rank", err)
	}
}

func TestWorkerErrorEnvelope(t *testing.T) {
	// The envelope round trip, without processes: encode a structured
	// failure, decode it, and check errors.As plus the degradation path.
	src := &faults.DeadlockError{Backend: "nativeeden", Reason: "quiescence", Elapsed: time.Second}
	err := decodeWorkerError(2, encodeWorkerError(src))
	var de *faults.DeadlockError
	if !errors.As(err, &de) || de.Reason != "quiescence" {
		t.Fatalf("deadlock did not survive the envelope: %v", err)
	}
	if !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("decoded error %q does not name the rank", err)
	}

	plain := decodeWorkerError(1, encodeWorkerError(errors.New("just text")))
	if faults.IsStructured(plain) {
		t.Fatalf("plain text error decoded as structured: %v", plain)
	}
	if !strings.Contains(plain.Error(), "just text") {
		t.Fatalf("plain text lost: %v", plain)
	}

	// Corrupt body: still an error, raw bytes preserved as text.
	corrupt := decodeWorkerError(0, []byte("not json at all"))
	if corrupt == nil || !strings.Contains(corrupt.Error(), "not json at all") {
		t.Fatalf("corrupt envelope handling: %v", corrupt)
	}
}

func TestRestartsExhaustedUnwrap(t *testing.T) {
	last := &faults.ProcessDeathError{Rank: 2, PEs: []int{2}, Reason: "exit"}
	ex := &RestartsExhaustedError{
		Attempts: []Attempt{{Attempt: 0, Rank: 2, Reason: "exit"}, {Attempt: 1, Rank: 2, Reason: "exit"}},
		Last:     last,
	}
	var pd *faults.ProcessDeathError
	if !errors.As(ex, &pd) || pd.Rank != 2 {
		t.Fatal("RestartsExhaustedError must unwrap to the last death")
	}
	msg := ex.Error()
	for _, want := range []string{"2 attempts", "attempt 0", "attempt 1", "rank 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("exhaustion message %q missing %q", msg, want)
		}
	}
}
