// Package gph implements the shared-heap GpH runtime system on the
// simulated multicore machine: capabilities sharing one heap, par-created
// sparks in per-capability pools, spark activation by work pushing
// (GHC 6.8.x) or Chase–Lev work stealing, stop-the-world garbage
// collection with polling or wakeup barriers, and lazy or eager
// black-holing — i.e. every runtime variant measured in the paper.
package gph

import (
	"fmt"

	"parhask/internal/cost"
	"parhask/internal/deque"
	"parhask/internal/graph"
	"parhask/internal/machine"
	"parhask/internal/rts"
	"parhask/internal/sim"
	"parhask/internal/trace"
)

// Stats aggregates runtime counters over one run.
type Stats struct {
	SparksCreated   int // par calls that entered a pool
	SparksDud       int // par on an already-evaluated closure
	SparksDropped   int // pool overflow
	SparksConverted int // sparks turned into work (thread or spark-thread item)
	SparksFizzled   int // activated but already evaluated
	SparksPushed    int // pushed to idle capabilities (pushing mode)
	SparksLeftover  int // still unevaluated in a pool at program exit
	SparksGCd       int // fizzled sparks pruned from pools during GC
	ThreadsPushed   int // surplus threads migrated to idle capabilities
	Steals          int // successful remote pool steals
	StealAttempts   int // total remote steal attempts
	ThreadsCreated  int
	GCs             int
	MajorGCs        int
	LocalGCs        int   // per-capability collections (LocalHeaps mode)
	GCTime          int64 // total stop-the-world collection time
	LocalGCTime     int64 // total unsynchronised local collection time
	DupEntries      int   // duplicate thunk entries (lazy black-holing)
	BlockedOnThunk  int   // threads that blocked on a black hole
	TotalAlloc      int64
}

// Result is the outcome of one GpH run.
type Result struct {
	// Elapsed is the virtual time from program start to the main
	// thread's completion.
	Elapsed sim.Time
	// Value is what the main function returned.
	Value graph.Value
	Stats Stats
	Trace *trace.Log

	// threads backs the GranularityProfile.
	threads []*rts.Thread
}

// capExt is the GpH-specific state of one capability.
type capExt struct {
	cap  *rts.Cap
	pool *deque.Deque[graph.Thunk]

	sparkThreadActive bool
	idle              bool     // parked in FindWork
	lastSwitch        sim.Time // for timeslice accounting
	lastThread        *rts.Thread
}

// RTS is a running GpH runtime instance. It implements rts.System.
type RTS struct {
	cfg   Config
	sim   *sim.Sim
	cpu   *machine.CPU
	log   *trace.Log
	caps  []*capExt
	stats Stats

	gc gcState
	// globalHeapBytes accumulates survivors promoted by local
	// collections (LocalHeaps mode); crossing the configured limit
	// triggers a full stop-the-world collection.
	globalHeapBytes int64

	liveThreads int
	shutdown    bool
	mainDone    sim.Time
	mainValue   graph.Value
	// threads holds every thread ever created, for deadlock diagnostics.
	threads []*rts.Thread
}

var _ rts.System = (*RTS)(nil)

// Run executes main under the configured GpH runtime and returns the
// run's result. main runs as the initial thread on capability 0.
func Run(cfg Config, main func(*rts.Ctx) graph.Value) (*Result, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("gph: invalid core count %d", cfg.Cores)
	}
	s := sim.New(cfg.Seed + 0x9e3779b9)
	r := &RTS{
		cfg: cfg,
		sim: s,
		cpu: machine.New(s, cfg.Cores),
		log: trace.NewLog(),
	}
	costs := cfg.Costs
	for i := 0; i < cfg.Cores; i++ {
		agent := r.log.NewAgent(fmt.Sprintf("cap%d", i))
		c := rts.NewCap(i, r, r.cpu, &costs, agent)
		r.caps = append(r.caps, &capExt{cap: c, pool: deque.New[graph.Thunk]()})
	}
	// The main thread starts on capability 0 (before the cap tasks run,
	// so it is already queued when cap0's scheduler starts).
	mainThread := r.caps[0].cap.NewThread("main", func(ctx *rts.Ctx) {
		r.mainValue = main(ctx)
		r.mainDone = ctx.Now()
		r.shutdown = true
		r.wakeAllCaps()
	})
	r.caps[0].cap.Enqueue(mainThread)
	for _, e := range r.caps {
		e.cap.Start(s)
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("gph: %w\n%s", err, r.dumpState())
	}
	r.log.Close(r.mainDone)
	for _, e := range r.caps {
		r.stats.TotalAlloc += e.cap.TotalAlloc
		// End-of-run spark accounting (as in GHC's +RTS -s): sparks left
		// in a pool either fizzled (already evaluated via sharing) or
		// were simply never needed.
		for {
			t, ok := e.pool.PopBottom()
			if !ok {
				break
			}
			if t.IsEvaluated() {
				r.stats.SparksFizzled++
			} else {
				r.stats.SparksLeftover++
			}
		}
	}
	return &Result{
		Elapsed: r.mainDone,
		Value:   r.mainValue,
		Stats:   r.stats,
		Trace:   r.log,
		threads: r.threads,
	}, nil
}

func (r *RTS) ext(c *rts.Cap) *capExt { return r.caps[c.Index] }

func (r *RTS) wakeAllCaps() {
	for _, e := range r.caps {
		e.cap.Wake()
	}
}

// costs returns the cost model (all caps share one).
func (r *RTS) costs() *cost.Model { return r.caps[0].cap.Costs }

// --- rts.System implementation ---

// EagerBlackholing reports the configured black-holing policy.
func (r *RTS) EagerBlackholing() bool { return r.cfg.EagerBlackholing }

// NoteDuplicate counts a duplicate thunk entry.
func (r *RTS) NoteDuplicate(t *graph.Thunk) { r.stats.DupEntries++ }

// ThreadCreated tracks the live-thread count for quiescence detection.
func (r *RTS) ThreadCreated(c *rts.Cap, th *rts.Thread) {
	r.liveThreads++
	r.stats.ThreadsCreated++
	r.threads = append(r.threads, th)
}

// ThreadDone handles thread termination.
func (r *RTS) ThreadDone(c *rts.Cap, th *rts.Thread) {
	r.liveThreads--
	if th.SparkThread {
		r.ext(c).sparkThreadActive = false
	}
	if r.shutdown && r.liveThreads == 0 {
		r.wakeAllCaps()
	}
}

// ThreadBlocked handles a thread parking on a black hole.
func (r *RTS) ThreadBlocked(c *rts.Cap, th *rts.Thread, on *graph.Thunk) {
	r.stats.BlockedOnThunk++
	if th.SparkThread {
		// A blocked spark thread stops draining sparks; allow the
		// capability to create another one (the paper: "the scheduler
		// will simply create another spark thread").
		r.ext(c).sparkThreadActive = false
	}
}

// Spark implements par: push the closure onto the local spark pool.
func (r *RTS) Spark(c *rts.Cap, th *rts.Thread, t *graph.Thunk) {
	e := r.ext(c)
	c.Burn(c.Costs.SparkPush)
	if t.IsEvaluated() {
		r.stats.SparksDud++
		return
	}
	if e.pool.Size() >= r.cfg.sparkPoolCap() {
		r.stats.SparksDropped++
		return
	}
	e.pool.PushBottom(t)
	r.stats.SparksCreated++
	if r.cfg.WorkStealing {
		// Event-driven: wake one idle capability so it can come and
		// steal. (Pushing mode distributes work only when a scheduler
		// runs — the delay the paper criticises.)
		r.wakeOneIdleCap()
	}
}

func (r *RTS) wakeOneIdleCap() {
	for _, e := range r.caps {
		if e.idle {
			// Claim the capability before it physically wakes so that the
			// next wake goes to a different idle capability.
			e.idle = false
			e.cap.Wake()
			return
		}
	}
}

// anySparks reports whether any capability's pool is non-empty.
func (r *RTS) anySparks() bool {
	for _, e := range r.caps {
		if !e.pool.Empty() {
			return true
		}
	}
	return false
}

// dumpState renders runtime state for deadlock diagnostics.
func (r *RTS) dumpState() string {
	var b []byte
	app := func(format string, args ...interface{}) {
		b = append(b, []byte(fmt.Sprintf(format, args...))...)
	}
	app("live threads: %d, shutdown: %v, gc pending: %v\n", r.liveThreads, r.shutdown, r.gc.pending)
	for _, e := range r.caps {
		app("cap%d: runQ=%d pool=%d blocked=%d idle=%v sparkThread=%v\n",
			e.cap.Index, e.cap.RunQLen(), e.pool.Size(), e.cap.BlockedCount, e.idle, e.sparkThreadActive)
	}
	for _, th := range r.threads {
		if th.State() == rts.ThreadDone {
			continue
		}
		if on := th.BlockedOn(); on != nil {
			app("thread %q (cap%d) state=%d blockedOn thunk state=%v evaluators=%d waiters=%d\n",
				th.Name, th.Cap().Index, th.State(), on.State(), on.Evaluators(), len(on.Waiters))
		} else {
			app("thread %q (cap%d) state=%d\n", th.Name, th.Cap().Index, th.State())
		}
	}
	return string(b)
}
