package gph

import (
	"strings"
	"testing"

	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/strategies"
)

// chunkMain builds a synthetic parallel workload: n independent chunks,
// each burning burn ns and allocating alloc bytes, sparked with parList
// and then folded. Returns the sum of chunk results (each chunk yields 1).
func chunkMain(n int, burn, alloc int64) func(*rts.Ctx) graph.Value {
	return func(ctx *rts.Ctx) graph.Value {
		ts := make([]*graph.Thunk, n)
		for i := 0; i < n; i++ {
			ts[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value {
				c.Alloc(alloc)
				c.Burn(burn)
				return 1
			})
		}
		strategies.ParListWHNF(ctx, ts)
		sum := 0
		for _, t := range ts {
			sum += ctx.Force(t).(int)
		}
		return sum
	}
}

func run(t *testing.T, cfg Config, main func(*rts.Ctx) graph.Value) *Result {
	t.Helper()
	res, err := Run(cfg, main)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSequentialMainNoSparks(t *testing.T) {
	cfg := NewConfig(4)
	res := run(t, cfg, func(ctx *rts.Ctx) graph.Value {
		ctx.Burn(1_000_000)
		return "done"
	})
	if res.Value != "done" {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Elapsed < 1_000_000 {
		t.Fatalf("elapsed = %d, want >= 1ms", res.Elapsed)
	}
	if res.Stats.SparksCreated != 0 {
		t.Fatalf("sparks = %d, want 0", res.Stats.SparksCreated)
	}
}

func TestParallelCorrectness(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 8} {
		cfg := NewConfig(cores)
		res := run(t, cfg, chunkMain(32, 500_000, 64*1024))
		if res.Value != 32 {
			t.Fatalf("cores=%d: value = %v, want 32", cores, res.Value)
		}
	}
}

func TestSpeedupWithWorkStealing(t *testing.T) {
	main := chunkMain(64, 2_000_000, 256*1024)
	r1 := run(t, WorkStealingConfig(1), main)
	r8 := run(t, WorkStealingConfig(8), main)
	speedup := float64(r1.Elapsed) / float64(r8.Elapsed)
	if speedup < 4.0 {
		t.Fatalf("8-core speedup = %.2f, want >= 4 (t1=%d t8=%d)", speedup, r1.Elapsed, r8.Elapsed)
	}
}

func TestWorkStealingBeatsPushing(t *testing.T) {
	// Irregular fine-grained work exposes the distribution delay of the
	// pushing scheduler.
	main := func(ctx *rts.Ctx) graph.Value {
		ts := make([]*graph.Thunk, 200)
		for i := range ts {
			i := i
			ts[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value {
				c.Alloc(32 * 1024)
				c.Burn(int64(100_000 + 37_000*(i%7)))
				return 1
			})
		}
		strategies.ParListWHNF(ctx, ts)
		sum := 0
		for _, t := range ts {
			sum += ctx.Force(t).(int)
		}
		return sum
	}
	steal := run(t, WorkStealingConfig(8), main)
	push := run(t, ImprovedSync(8), main)
	if steal.Value != 200 || push.Value != 200 {
		t.Fatalf("bad values %v %v", steal.Value, push.Value)
	}
	if steal.Elapsed >= push.Elapsed {
		t.Fatalf("stealing (%d) not faster than pushing (%d)", steal.Elapsed, push.Elapsed)
	}
}

func TestBigAllocAreaReducesGCs(t *testing.T) {
	main := chunkMain(32, 1_000_000, 2*1024*1024)
	small := run(t, PlainGHC69(4), main)
	big := run(t, BigAllocArea(4), main)
	if small.Stats.GCs <= big.Stats.GCs {
		t.Fatalf("GCs: small-area=%d big-area=%d, want small > big",
			small.Stats.GCs, big.Stats.GCs)
	}
	if big.Elapsed >= small.Elapsed {
		t.Fatalf("big area (%d) not faster than small area (%d)", big.Elapsed, small.Elapsed)
	}
}

func TestWakeupBarrierBeatsPolling(t *testing.T) {
	main := chunkMain(64, 400_000, 2*1024*1024)
	polling := run(t, BigAllocArea(8), main)
	wakeup := run(t, ImprovedSync(8), main)
	if wakeup.Elapsed >= polling.Elapsed {
		t.Fatalf("wakeup barrier (%d) not faster than polling (%d)",
			wakeup.Elapsed, polling.Elapsed)
	}
}

// sharedPivotMain models the APSP sharing pattern: many sparked tasks
// all force one shared expensive thunk first. The pivot allocates less
// than one allocation block, so (like the APSP row updates) it never
// reaches a scheduler return where lazy black-holing would mark it —
// the duplication window stays open for its whole evaluation.
func sharedPivotMain(tasks int, pivotBurn, taskBurn int64) func(*rts.Ctx) graph.Value {
	return func(ctx *rts.Ctx) graph.Value {
		pivot := strategies.Thunk(func(c *rts.Ctx) graph.Value {
			c.Burn(pivotBurn)
			c.Alloc(2 * 1024)
			return 10
		})
		// Half the sparked tasks force the shared pivot; the other half
		// are independent. Under eager black-holing, capabilities that
		// would otherwise duplicate the pivot block and run independent
		// work instead; under lazy black-holing that capacity is wasted
		// on duplicate evaluation.
		ts := make([]*graph.Thunk, 2*tasks)
		for i := 0; i < tasks; i++ {
			ts[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value {
				p := c.Force(pivot).(int)
				c.Alloc(16 * 1024)
				c.Burn(taskBurn)
				return p + 1
			})
		}
		for i := tasks; i < 2*tasks; i++ {
			ts[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value {
				c.Alloc(16 * 1024)
				c.Burn(taskBurn)
				return 11
			})
		}
		strategies.ParListWHNF(ctx, ts)
		sum := 0
		for _, t := range ts {
			sum += ctx.Force(t).(int)
		}
		return sum
	}
}

func TestLazyBlackholingDuplicatesSharedWork(t *testing.T) {
	main := sharedPivotMain(16, 3_000_000, 500_000)
	cfg := WorkStealingConfig(8)
	cfg.EagerBlackholing = false
	lazy := run(t, cfg, main)
	cfg.EagerBlackholing = true
	eager := run(t, cfg, main)

	if lazy.Value != 2*16*11 || eager.Value != 2*16*11 {
		t.Fatalf("values: lazy=%v eager=%v, want %d", lazy.Value, eager.Value, 2*16*11)
	}
	if lazy.Stats.DupEntries == 0 {
		t.Fatal("lazy black-holing produced no duplicate entries on a shared pivot")
	}
	if eager.Stats.DupEntries != 0 {
		t.Fatalf("eager black-holing produced %d duplicate entries, want 0",
			eager.Stats.DupEntries)
	}
	if eager.Elapsed >= lazy.Elapsed {
		t.Fatalf("eager (%d) not faster than lazy (%d) despite duplicates",
			eager.Elapsed, lazy.Elapsed)
	}
	if eager.Stats.BlockedOnThunk == 0 {
		t.Fatal("eager run should block threads on the pivot black hole")
	}
}

func TestSparkThreadsReduceThreadCount(t *testing.T) {
	main := chunkMain(100, 200_000, 32*1024)
	withCfg := WorkStealingConfig(4)
	withoutCfg := WorkStealingConfig(4)
	withoutCfg.SparkThreads = false
	with := run(t, withCfg, main)
	without := run(t, withoutCfg, main)
	if with.Stats.ThreadsCreated >= without.Stats.ThreadsCreated {
		t.Fatalf("spark threads created %d threads, thread-per-spark %d; want fewer",
			with.Stats.ThreadsCreated, without.Stats.ThreadsCreated)
	}
	if with.Value != 100 || without.Value != 100 {
		t.Fatalf("bad values %v %v", with.Value, without.Value)
	}
}

func TestDeterminism(t *testing.T) {
	for _, cfg := range []Config{
		PlainGHC69(4), BigAllocArea(4), ImprovedSync(4), WorkStealingConfig(4),
	} {
		a := run(t, cfg, chunkMain(40, 300_000, 128*1024))
		b := run(t, cfg, chunkMain(40, 300_000, 128*1024))
		if a.Elapsed != b.Elapsed {
			t.Fatalf("config %+v: elapsed %d vs %d", cfg, a.Elapsed, b.Elapsed)
		}
		if a.Stats != b.Stats {
			t.Fatalf("config %+v: stats diverge:\n%+v\n%+v", cfg, a.Stats, b.Stats)
		}
	}
}

func TestTraceIsClosedAndPlausible(t *testing.T) {
	res := run(t, WorkStealingConfig(4), chunkMain(32, 1_000_000, 256*1024))
	if res.Trace.End() != res.Elapsed {
		t.Fatalf("trace end %d != elapsed %d", res.Trace.End(), res.Elapsed)
	}
	if n := len(res.Trace.Agents()); n != 4 {
		t.Fatalf("agents = %d, want 4", n)
	}
	u := res.Trace.Utilisation()
	if u < 0.5 || u > 1.0 {
		t.Fatalf("utilisation = %.2f, want in [0.5, 1.0]", u)
	}
}

func TestBlockedThreadIsWokenAcrossCaps(t *testing.T) {
	cfg := WorkStealingConfig(2)
	cfg.EagerBlackholing = true
	res := run(t, cfg, func(ctx *rts.Ctx) graph.Value {
		shared := strategies.Thunk(func(c *rts.Ctx) graph.Value {
			c.Alloc(8 * 1024)
			c.Burn(2_000_000)
			return 99
		})
		ctx.Par(shared)
		// Let the other capability steal and start evaluating...
		ctx.Burn(500_000)
		// ...then force: we must block on the black hole and be woken.
		return ctx.Force(shared)
	})
	if res.Value != 99 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.BlockedOnThunk == 0 {
		t.Fatal("main never blocked; the spark was not stolen in time")
	}
	if res.Stats.Steals == 0 {
		t.Fatal("no steal recorded")
	}
}

func TestFizzledSparks(t *testing.T) {
	// Main forces everything itself immediately; sparks mostly fizzle.
	cfg := WorkStealingConfig(1)
	res := run(t, cfg, chunkMain(20, 50_000, 8*1024))
	if res.Value != 20 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.SparksFizzled == 0 {
		t.Fatal("expected fizzled sparks on a single capability")
	}
}

func TestSparkPoolOverflowDrops(t *testing.T) {
	cfg := WorkStealingConfig(1)
	cfg.SparkPoolCap = 8
	res := run(t, cfg, chunkMain(50, 10_000, 4*1024))
	if res.Stats.SparksDropped == 0 {
		t.Fatal("expected dropped sparks with a tiny pool")
	}
	if res.Value != 50 {
		t.Fatalf("value = %v, want 50 (drops must not lose results)", res.Value)
	}
}

func TestParOnEvaluatedThunkIsDud(t *testing.T) {
	cfg := WorkStealingConfig(2)
	res := run(t, cfg, func(ctx *rts.Ctx) graph.Value {
		t1 := graph.NewValue(5)
		ctx.Par(t1)
		return ctx.Force(t1)
	})
	if res.Value != 5 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.SparksDud != 1 {
		t.Fatalf("duds = %d, want 1", res.Stats.SparksDud)
	}
}

func TestGCHappensAndResetsAreas(t *testing.T) {
	cfg := PlainGHC69(2)
	res := run(t, cfg, func(ctx *rts.Ctx) graph.Value {
		ctx.Alloc(4 * 1024 * 1024) // 8 areas worth on one cap
		ctx.Burn(100_000)
		return 1
	})
	if res.Stats.GCs < 4 {
		t.Fatalf("GCs = %d, want >= 4 after allocating 8 areas", res.Stats.GCs)
	}
	if res.Stats.GCTime <= 0 {
		t.Fatal("no GC time recorded")
	}
}

func TestMoreCoresNeverWrongResult(t *testing.T) {
	for cores := 1; cores <= 16; cores *= 2 {
		for _, eager := range []bool{false, true} {
			cfg := WorkStealingConfig(cores)
			cfg.EagerBlackholing = eager
			res := run(t, cfg, sharedPivotMain(12, 800_000, 200_000))
			if res.Value != 2*12*11 {
				t.Fatalf("cores=%d eager=%v: value %v", cores, eager, res.Value)
			}
		}
	}
}

func TestLocalHeapsAvoidGlobalBarriers(t *testing.T) {
	// GC-heavy workload on 8 capabilities: the semi-distributed heap
	// collects locally without a barrier and only rarely stops the world.
	main := chunkMain(64, 400_000, 4*1024*1024)
	stw := run(t, WorkStealingConfig(8), main)
	local := run(t, LocalHeapsConfig(8), main)
	if local.Value != 64 || stw.Value != 64 {
		t.Fatalf("bad values %v %v", local.Value, stw.Value)
	}
	if local.Stats.LocalGCs == 0 {
		t.Fatal("no local collections in LocalHeaps mode")
	}
	if local.Stats.GCs >= stw.Stats.GCs {
		t.Fatalf("global GCs: local-heaps=%d stop-the-world=%d, want fewer",
			local.Stats.GCs, stw.Stats.GCs)
	}
	if local.Elapsed >= stw.Elapsed {
		t.Fatalf("local heaps (%d) not faster than stop-the-world (%d) on a GC-heavy load",
			local.Elapsed, stw.Elapsed)
	}
}

func TestLocalHeapsGlobalLimitTriggersFullGC(t *testing.T) {
	cfg := LocalHeapsConfig(2)
	cfg.GlobalHeapLimit = 256 * 1024 // tiny: force full collections
	res := run(t, cfg, chunkMain(16, 200_000, 8*1024*1024))
	if res.Value != 16 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.GCs == 0 {
		t.Fatal("promoted heap never triggered a full collection")
	}
	if res.Stats.MajorGCs != res.Stats.GCs {
		t.Fatalf("in LocalHeaps mode every global GC is major: %d vs %d",
			res.Stats.MajorGCs, res.Stats.GCs)
	}
}

func TestLocalHeapsDeterminism(t *testing.T) {
	cfg := LocalHeapsConfig(4)
	a := run(t, cfg, chunkMain(24, 300_000, 2*1024*1024))
	b := run(t, cfg, chunkMain(24, 300_000, 2*1024*1024))
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Fatalf("nondeterministic local-heaps run")
	}
}

func TestParallelGCShortensPauses(t *testing.T) {
	main := chunkMain(64, 300_000, 4*1024*1024)
	seqCfg := WorkStealingConfig(8)
	parCfg := WorkStealingConfig(8)
	parCfg.ParallelGC = true
	seq := run(t, seqCfg, main)
	par := run(t, parCfg, main)
	if seq.Value != 64 || par.Value != 64 {
		t.Fatalf("bad values %v %v", seq.Value, par.Value)
	}
	if par.Stats.GCTime >= seq.Stats.GCTime {
		t.Fatalf("parallel GC time (%d) not below sequential (%d)",
			par.Stats.GCTime, seq.Stats.GCTime)
	}
	if par.Elapsed >= seq.Elapsed {
		t.Fatalf("parallel GC (%d) not faster overall than sequential (%d)",
			par.Elapsed, seq.Elapsed)
	}
}

func TestParallelGCSingleCoreNoop(t *testing.T) {
	cfg := WorkStealingConfig(1)
	cfg.ParallelGC = true
	res := run(t, cfg, chunkMain(8, 100_000, 2*1024*1024))
	if res.Value != 8 {
		t.Fatalf("value = %v", res.Value)
	}
}

func TestSparkPoolPrunedAtGC(t *testing.T) {
	// Fill the pool with sparks the main thread then evaluates itself
	// (fizzling them in place), then force a GC: pruning must count them.
	cfg := PlainGHC69(1)
	res := run(t, cfg, func(ctx *rts.Ctx) graph.Value {
		ts := make([]*graph.Thunk, 30)
		for i := range ts {
			ts[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value { return 1 })
		}
		strategies.ParListWHNF(ctx, ts)
		sum := 0
		for _, th := range ts {
			sum += ctx.Force(th).(int) // fizzle every spark
		}
		ctx.Alloc(1024 * 1024) // trigger two GCs on the 512 KB area
		ctx.Burn(10_000)
		return sum
	})
	if res.Value != 30 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.SparksGCd == 0 {
		t.Fatal("no fizzled sparks pruned during GC")
	}
}

func TestGranularityProfile(t *testing.T) {
	res := run(t, WorkStealingConfig(4), chunkMain(40, 700_000, 64*1024))
	g := res.GranularityProfile()
	if g.Count == 0 {
		t.Fatal("no threads profiled")
	}
	if g.Total <= 0 || g.Max < g.Median || g.Median < g.Min {
		t.Fatalf("inconsistent profile: %+v", g)
	}
	sumBuckets := 0
	for _, c := range g.Buckets {
		sumBuckets += c
	}
	if sumBuckets != g.Count {
		t.Fatalf("buckets sum %d != count %d", sumBuckets, g.Count)
	}
	out := g.String()
	if !strings.Contains(out, "thread granularity") || !strings.Contains(out, "median") {
		t.Fatalf("profile render incomplete:\n%s", out)
	}
	// The main thread alone ran the fold; total run time must be at
	// least the whole elapsed span (4 caps mostly busy: more).
	if g.Total < res.Elapsed {
		t.Fatalf("total run time %d below elapsed %d", g.Total, res.Elapsed)
	}
}
