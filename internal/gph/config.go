package gph

import "parhask/internal/cost"

// Config selects a GpH runtime variant. The zero value is not valid; use
// NewConfig or one of the paper-variant constructors.
type Config struct {
	// Cores is the number of capabilities = simulated physical cores.
	Cores int
	// Costs is the virtual cost model.
	Costs cost.Model
	// AllocArea is the per-capability allocation area in bytes;
	// 0 selects Costs.AllocAreaDefault.
	AllocArea int64
	// WorkStealing selects the Chase–Lev spark-stealing scheduler
	// (§IV-A.2); false selects the GHC 6.8.x scheduler-driven work
	// pushing.
	WorkStealing bool
	// WakeupBarrier selects the improved wakeup-based GC synchronisation
	// (§IV-A.1); false selects the original polling barrier.
	WakeupBarrier bool
	// EagerBlackholing marks thunks on entry (§IV-A.3); false is GHC's
	// lazy black-holing.
	EagerBlackholing bool
	// SparkThreads uses one dedicated spark-running thread per capability
	// (§IV-A.4); false creates a fresh thread per spark.
	SparkThreads bool
	// ResidentBytes is the workload's long-lived heap (input data etc.),
	// included in every GC's live-data estimate.
	ResidentBytes int64
	// ParallelGC divides each stop-the-world collection's copying work
	// across the capabilities (the parallel generational-copying
	// collector of the paper's reference [29] — still stop-the-world,
	// as §IV-A.1 notes, but the pause shrinks with the core count).
	ParallelGC bool
	// LocalHeaps enables the semi-distributed heap organisation the
	// paper's §VI proposes as future work (after Doligez–Leroy): each
	// capability collects its own allocation area independently — no
	// stop-the-world barrier — promoting survivors into a shared global
	// heap that is collected (with a full barrier) only when it exceeds
	// GlobalHeapLimit.
	LocalHeaps bool
	// GlobalHeapLimit is the promoted-bytes threshold that triggers a
	// global collection in LocalHeaps mode; 0 selects 64 MB.
	GlobalHeapLimit int64
	// SparkPoolCap bounds each capability's spark pool; overflowing
	// sparks are dropped. 0 selects 4096 (GHC's default).
	SparkPoolCap int
	// Seed for the deterministic PRNG (victim selection).
	Seed uint64
}

// NewConfig returns a Config for the given core count with defaults
// matching the paper's fully-optimised GpH runtime.
func NewConfig(cores int) Config {
	return Config{
		Cores:            cores,
		Costs:            cost.Default(),
		WorkStealing:     true,
		WakeupBarrier:    true,
		EagerBlackholing: false,
		SparkThreads:     true,
		Seed:             1,
	}
}

// The five GpH variants measured in the paper (Fig. 1/2 rows a–d; the
// eager-black-holing variants appear in Fig. 5).

// PlainGHC69 is the unmodified GHC 6.9 baseline: work pushing, polling
// GC barrier, lazy black-holing, default 512 KB allocation areas, and a
// fresh thread per spark.
func PlainGHC69(cores int) Config {
	c := NewConfig(cores)
	c.WorkStealing = false
	c.WakeupBarrier = false
	c.SparkThreads = false
	return c
}

// BigAllocArea is PlainGHC69 with enlarged allocation areas (trace b).
func BigAllocArea(cores int) Config {
	c := PlainGHC69(cores)
	c.AllocArea = c.Costs.AllocAreaBig
	return c
}

// ImprovedSync adds the wakeup-based GC barrier (trace c).
func ImprovedSync(cores int) Config {
	c := BigAllocArea(cores)
	c.WakeupBarrier = true
	return c
}

// WorkStealingConfig additionally replaces spark pushing by Chase–Lev
// work stealing with dedicated spark threads (trace d) — the combination
// that landed together in GHC's work-stealing patch.
func WorkStealingConfig(cores int) Config {
	c := ImprovedSync(cores)
	c.WorkStealing = true
	c.SparkThreads = true
	return c
}

// allocArea resolves the configured allocation area.
func (c *Config) allocArea() int64 {
	if c.AllocArea > 0 {
		return c.AllocArea
	}
	return c.Costs.AllocAreaDefault
}

// sparkPoolCap resolves the configured spark pool bound.
func (c *Config) sparkPoolCap() int {
	if c.SparkPoolCap > 0 {
		return c.SparkPoolCap
	}
	return 4096
}

// globalHeapLimit resolves the configured global-heap threshold.
func (c *Config) globalHeapLimit() int64 {
	if c.GlobalHeapLimit > 0 {
		return c.GlobalHeapLimit
	}
	return 64 * 1024 * 1024
}

// LocalHeapsConfig is the fully-optimised runtime with the §VI
// semi-distributed heap enabled (local collections without a barrier).
func LocalHeapsConfig(cores int) Config {
	c := WorkStealingConfig(cores)
	c.LocalHeaps = true
	return c
}
