package gph

import (
	"fmt"
	"sort"
	"strings"

	"parhask/internal/trace"
)

// Granularity is a thread-granularity profile: the distribution of
// per-thread virtual run times over a completed run. The paper leans on
// custom profiling tooling throughout ("our work underlines the
// importance of adequate tools for parallel profiling"); this is the
// GranSim-style granularity histogram that tradition starts from.
type Granularity struct {
	// Count is the number of threads profiled.
	Count int
	// Total is the summed run time of all threads.
	Total int64
	// Min, Median, P90 and Max summarise the distribution.
	Min, Median, P90, Max int64
	// Buckets counts threads per decade: <10µs, <100µs, <1ms, <10ms,
	// <100ms, >=100ms.
	Buckets [6]int
}

// bucketEdges are the decade boundaries in virtual ns.
var bucketEdges = [5]int64{10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

// bucketLabels name the histogram rows.
var bucketLabels = [6]string{"<10µs", "<100µs", "<1ms", "<10ms", "<100ms", "≥100ms"}

// GranularityProfile computes the thread-granularity profile of a run.
func (res *Result) GranularityProfile() Granularity {
	var g Granularity
	times := make([]int64, 0, len(res.threads))
	for _, th := range res.threads {
		rt := th.RunTime()
		times = append(times, rt)
		g.Total += rt
		placed := false
		for i, edge := range bucketEdges {
			if rt < edge {
				g.Buckets[i]++
				placed = true
				break
			}
		}
		if !placed {
			g.Buckets[5]++
		}
	}
	g.Count = len(times)
	if g.Count == 0 {
		return g
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	g.Min = times[0]
	g.Median = times[g.Count/2]
	g.P90 = times[g.Count*9/10]
	g.Max = times[g.Count-1]
	return g
}

// String renders the profile as a histogram table.
func (g Granularity) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "thread granularity: %d threads, %s total run time\n",
		g.Count, trace.FmtDur(g.Total))
	fmt.Fprintf(&b, "  min %s · median %s · p90 %s · max %s\n",
		trace.FmtDur(g.Min), trace.FmtDur(g.Median), trace.FmtDur(g.P90), trace.FmtDur(g.Max))
	maxCount := 1
	for _, c := range g.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range g.Buckets {
		bar := strings.Repeat("#", c*40/maxCount)
		fmt.Fprintf(&b, "  %-7s %5d %s\n", bucketLabels[i], c, bar)
	}
	return b.String()
}
