package gph

import (
	"fmt"

	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/trace"
)

// FindWork is the idle loop of a capability: join pending GCs, run
// threads that arrived, activate sparks (own pool, then — in stealing
// mode — other capabilities' pools), or go idle. Returns nil only when
// the runtime is shutting down and quiescent.
func (r *RTS) FindWork(c *rts.Cap) *rts.Thread {
	e := r.ext(c)
	for {
		if r.gc.pending && r.gc.initiator != c {
			r.gcArrive(c, nil)
			continue
		}
		if th := c.TryDequeue(); th != nil {
			return th
		}
		if r.shutdown && r.liveThreads == 0 {
			return nil
		}
		if !r.cfg.WorkStealing {
			// The scheduler is running: the 6.8.x load balancer pushes
			// surplus work now (no-op unless we have surplus).
			r.schedulePushWork(c)
		}
		if th := r.activateSpark(c); th != nil {
			if r.cfg.WorkStealing && r.anySparks() {
				// Wake chaining: there is more to steal; recruit another
				// idle capability.
				r.wakeOneIdleCap()
			}
			return th
		}
		// The spark hunt above burned virtual time; any Unpark that
		// arrived during those burns was absorbed by the burn's own
		// sleep loop. Re-check every park condition (none of these
		// checks yields) before committing to the park, or an enqueued
		// wakeup could be lost for good.
		if c.RunQLen() > 0 || !e.pool.Empty() ||
			(r.gc.pending && r.gc.initiator != c) ||
			(r.shutdown && r.liveThreads == 0) {
			continue
		}
		// Nothing to do: go idle. "Blocked" (red) when this capability
		// still owns threads that are parked on black holes.
		e.idle = true
		if c.BlockedCount > 0 {
			c.SetState(trace.Blocked)
		} else {
			c.SetState(trace.Idle)
		}
		if r.cfg.WorkStealing {
			// Event-driven: sparks, wakeups, GC and shutdown all unpark us.
			c.Task.Park()
		} else {
			// The old scheduler polls for pushed work.
			c.Task.SleepInterruptible(c.Costs.IdleBackoff)
		}
		e.idle = false
		c.SetState(trace.Runnable)
	}
}

// HeapBoundary runs at every allocation-block boundary of a running
// thread: join or initiate GCs and enforce the scheduler timeslice.
func (r *RTS) HeapBoundary(c *rts.Cap, th *rts.Thread) bool {
	e := r.ext(c)
	if e.lastThread != th {
		e.lastThread = th
		e.lastSwitch = c.Now()
	}
	if r.gc.pending && r.gc.initiator != c {
		r.gcArrive(c, th)
		c.SetState(trace.Run)
	}
	if c.AllocInArea >= r.cfg.allocArea() {
		if r.cfg.LocalHeaps {
			r.localGC(c, th)
			if r.globalHeapBytes >= r.cfg.globalHeapLimit() {
				r.initiateGC(c, th)
			}
		} else {
			r.initiateGC(c, th)
		}
		c.SetState(trace.Run)
	}
	if c.Now()-e.lastSwitch >= c.Costs.Timeslice {
		e.lastSwitch = c.Now()
		if !r.cfg.WorkStealing {
			r.schedulePushWork(c)
		}
		if c.RunQLen() > 0 {
			return true // context switch
		}
	}
	return false
}

// activateSpark turns a spark into runnable work: either a dedicated
// spark thread that keeps draining pools (§IV-A.4) or a fresh thread for
// this one spark.
func (r *RTS) activateSpark(c *rts.Cap) *rts.Thread {
	e := r.ext(c)
	if r.cfg.SparkThreads && e.sparkThreadActive {
		// An active spark thread is already draining the pools.
		return nil
	}
	t := r.getSpark(c)
	if t == nil {
		return nil
	}
	c.Burn(c.Costs.ThreadCreate)
	if r.cfg.SparkThreads {
		e.sparkThreadActive = true
		th := c.NewThread(fmt.Sprintf("spkthr-c%d", c.Index), func(ctx *rts.Ctx) {
			r.sparkLoop(ctx, t)
		})
		th.SparkThread = true
		return th
	}
	return c.NewThread(fmt.Sprintf("spark-c%d", c.Index), func(ctx *rts.Ctx) {
		ctx.Force(t)
	})
}

// sparkLoop is the body of a dedicated spark thread: evaluate sparks
// until none are available anywhere, yielding to higher-priority threads.
func (r *RTS) sparkLoop(ctx *rts.Ctx, first *graph.Thunk) {
	t := first
	for {
		if t != nil {
			ctx.Force(t)
		}
		c := ctx.Cap()
		if c.RunQLen() > 0 {
			// Spark threads give up the CPU for other threads; the
			// scheduler creates a new spark thread later if needed.
			return
		}
		t = r.getSpark(c)
		if t == nil {
			return
		}
	}
}

// getSpark obtains the next useful (non-fizzled) spark: first from the
// local pool, then — in stealing mode — from other capabilities' pools
// via the lock-free deque.
func (r *RTS) getSpark(c *rts.Cap) *graph.Thunk {
	e := r.ext(c)
	for {
		t, ok := e.pool.PopBottom()
		if !ok {
			break
		}
		c.Burn(c.Costs.SparkPop)
		if t.IsEvaluated() {
			r.stats.SparksFizzled++
			continue
		}
		r.stats.SparksConverted++
		return t
	}
	if !r.cfg.WorkStealing {
		return nil
	}
	n := len(r.caps)
	start := r.sim.Rand().Intn(n)
	for i := 0; i < n; i++ {
		v := r.caps[(start+i)%n]
		if v == e {
			continue
		}
		for !v.pool.Empty() {
			c.Burn(c.Costs.StealAttempt)
			r.stats.StealAttempts++
			t, ok := v.pool.Steal()
			if !ok {
				break
			}
			r.stats.Steals++
			if t.IsEvaluated() {
				r.stats.SparksFizzled++
				continue
			}
			r.stats.SparksConverted++
			return t
		}
	}
	return nil
}

// schedulePushWork is the GHC 6.8.x load balancer: when the scheduler
// runs on a capability with surplus work and other capabilities are
// idle, push them the surplus. Threads are pushed in both scheduler
// modes (the paper: "surplus threads are still pushed actively"); sparks
// only in pushing mode — in stealing mode idle capabilities pull them.
func (r *RTS) schedulePushWork(c *rts.Cap) {
	e := r.ext(c)
	for c.RunQLen() > 1 {
		target := r.findIdleCap(c)
		if target == nil {
			break
		}
		th := c.StealRunnable()
		if th == nil {
			break
		}
		if th.SparkThread {
			// Spark threads are bound to the capability whose
			// sparkThreadActive flag tracks them; do not migrate them.
			c.Enqueue(th)
			break
		}
		c.Burn(c.Costs.PushWork)
		r.stats.ThreadsPushed++
		target.cap.Enqueue(th)
	}
	if r.cfg.WorkStealing {
		return
	}
	for e.pool.Size() > 1 {
		target := r.findIdleCap(c)
		if target == nil || !target.pool.Empty() {
			break
		}
		t, ok := e.pool.PopBottom()
		if !ok {
			break
		}
		if t.IsEvaluated() {
			r.stats.SparksFizzled++
			continue
		}
		c.Burn(c.Costs.PushWork)
		r.stats.SparksPushed++
		target.pool.PushBottom(t)
		target.cap.Wake()
	}
}

// findIdleCap returns a free capability other than c: one with no
// running thread, an empty run queue and an empty spark pool — whether
// it is parked or waiting at the GC barrier (GHC 6.8's load balancer
// pushed to any free capability when the scheduler ran).
func (r *RTS) findIdleCap(c *rts.Cap) *capExt {
	n := len(r.caps)
	for i := 1; i < n; i++ {
		e := r.caps[(c.Index+i)%n]
		if e.cap.Current() == nil && e.cap.RunQLen() == 0 && e.pool.Empty() {
			return e
		}
	}
	return nil
}
