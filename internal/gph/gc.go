package gph

import (
	"parhask/internal/rts"
	"parhask/internal/trace"
)

// gcState coordinates a stop-the-world collection across capabilities.
//
// The collection is initiated by the capability whose allocation area
// filled up; every other capability must reach a heap check (or be
// woken from idle) before the barrier completes — GC checks happen only
// at allocation-block boundaries, which is why slowly-allocating
// threads delay the barrier (§IV-A.1). Two barrier implementations are
// modelled: the original polling barrier, in which both the initiator
// and the waiters re-check state on a sleep cadence, and the improved
// wakeup-based barrier, in which the last capability to arrive wakes
// the initiator and the initiator wakes everyone on completion.
type gcState struct {
	pending   bool
	initiator *rts.Cap
	arrived   int
	epoch     uint64
}

// initiateGC starts (or, if one is already pending, joins) a stop-the-
// world collection. Called at a heap boundary of the running thread th
// on capability c.
func (r *RTS) initiateGC(c *rts.Cap, th *rts.Thread) {
	if r.gc.pending {
		if r.gc.initiator != c {
			r.gcArrive(c, th)
		}
		return
	}
	r.gc.pending = true
	r.gc.initiator = c
	r.gc.arrived = 1
	if th != nil {
		th.MarkEntered() // suspension point: lazy black-holing catch-up
	}
	r.wakeAllCaps()
	c.SetState(trace.Runnable)
	costs := c.Costs
	c.Burn(costs.GCHandshake)

	// Wait for every capability to stop.
	if r.cfg.WakeupBarrier {
		for r.gc.arrived < len(r.caps) {
			c.Task.Park()
		}
	} else {
		// The old initiator actively yield-loops while grabbing the
		// capabilities (fine granularity), so the arrival wait tracks
		// the slowest mutator's next heap check closely; the expensive
		// part of the polling barrier is on the waiters' side.
		for r.gc.arrived < len(r.caps) {
			c.Task.SleepInterruptible(25_000)
		}
	}

	// Sequential stop-the-world collection on the initiating capability.
	// Young collections copy only the allocation areas' survivors; every
	// MajorGCEvery-th collection is a major one that also copies the
	// resident old generation.
	c.SetState(trace.GC)
	var freshly int64
	for _, e := range r.caps {
		freshly += e.cap.AllocSinceGC
	}
	live := int64(float64(freshly) * costs.SurvivalRate)
	r.stats.GCs++
	if r.cfg.LocalHeaps {
		// Semi-distributed heap: global collections are rare and full —
		// they trace the promoted global heap plus the resident data.
		live += r.cfg.ResidentBytes + int64(costs.OldSurvivalRate*float64(r.globalHeapBytes))
		r.globalHeapBytes = int64(costs.OldSurvivalRate * float64(r.globalHeapBytes))
		r.stats.MajorGCs++
	} else if costs.MajorGCEvery > 0 && r.stats.GCs%costs.MajorGCEvery == 0 {
		live += r.cfg.ResidentBytes
		r.stats.MajorGCs++
	}
	copying := costs.GCPerLiveByte * float64(live)
	if r.cfg.ParallelGC && len(r.caps) > 1 {
		// The parallel collector [29]: the copying work is divided over
		// the (stopped) capabilities, with an imbalance/sync factor.
		// Still stop-the-world — the barrier above is unchanged.
		copying = copying / float64(len(r.caps)) * costs.ParGCBalance
		for _, e := range r.caps {
			e.cap.Agent.Set(c.Now(), trace.GC)
		}
	}
	gcCost := costs.GCFixed + int64(copying)
	start := c.Now()
	c.Burn(gcCost)
	r.stats.GCTime += c.Now() - start
	if r.cfg.ParallelGC && len(r.caps) > 1 {
		for _, e := range r.caps {
			if e.cap != c {
				e.cap.Agent.Set(c.Now(), trace.Runnable)
			}
		}
	}
	for _, e := range r.caps {
		e.cap.AllocInArea = 0
		e.cap.AllocSinceGC = 0
		// GHC prunes the spark pools during GC: sparks whose thunks were
		// already evaluated (fizzled) are discarded.
		r.pruneSparkPool(e)
	}

	// Release the barrier.
	r.gc.pending = false
	r.gc.initiator = nil
	r.gc.epoch++
	if r.cfg.WakeupBarrier {
		r.wakeAllCaps()
	}
}

// gcArrive stops capability c at the barrier until the collection
// finishes. th is the thread that was running (nil when arriving from
// the idle loop).
func (r *RTS) gcArrive(c *rts.Cap, th *rts.Thread) {
	if th != nil {
		th.MarkEntered()
	}
	c.SetState(trace.Runnable)
	c.Burn(c.Costs.GCHandshake)
	if !r.gc.pending {
		// The collection completed while we were paying the handshake.
		return
	}
	r.gc.arrived++
	epoch := r.gc.epoch
	if r.cfg.WakeupBarrier {
		if r.gc.arrived == len(r.caps) && r.gc.initiator != nil {
			r.gc.initiator.Wake()
		}
		for r.gc.epoch == epoch {
			c.Task.Park()
		}
	} else {
		r.pollWait(c, func() bool { return r.gc.epoch != epoch })
	}
}

// pollWait is the original (polling) barrier wait: spin briefly —
// short waits are absorbed at fine granularity — then block in
// OS-quantum-sized sleeps, overshooting the condition by up to one
// quantum. This is the cost the improved wakeup barrier removes.
func (r *RTS) pollWait(c *rts.Cap, done func() bool) {
	costs := c.Costs
	const spinStep = 25_000 // 25 µs re-check granularity while spinning
	spinUntil := c.Now() + costs.BarrierSpin
	for !done() {
		if c.Now() < spinUntil {
			c.Task.SleepInterruptible(spinStep)
		} else {
			c.Task.SleepInterruptible(costs.BarrierPollInterval)
		}
	}
}

// localGC collects one capability's own allocation area without any
// synchronisation with the other capabilities — the semi-distributed
// heap organisation the paper's §VI proposes (after Doligez–Leroy):
// survivors are promoted into the shared global heap, whose growth is
// what eventually forces a full stop-the-world collection.
func (r *RTS) localGC(c *rts.Cap, th *rts.Thread) {
	if th != nil {
		th.MarkEntered()
	}
	c.SetState(trace.GC)
	costs := c.Costs
	survivors := int64(float64(c.AllocSinceGC) * costs.SurvivalRate)
	gcCost := costs.LocalGCFixed + int64(costs.GCPerLiveByte*float64(survivors))
	start := c.Now()
	c.Burn(gcCost)
	r.stats.LocalGCs++
	r.stats.LocalGCTime += c.Now() - start
	r.globalHeapBytes += survivors
	c.AllocInArea = 0
	c.AllocSinceGC = 0
}

// pruneSparkPool discards fizzled sparks from a pool during GC (GHC's
// pruneSparkQueue), preserving the order of the survivors.
func (r *RTS) pruneSparkPool(e *capExt) {
	n := e.pool.Size()
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		t, ok := e.pool.Steal() // oldest first keeps the order stable
		if !ok {
			break
		}
		if t.IsEvaluated() {
			r.stats.SparksGCd++
			continue
		}
		e.pool.PushBottom(t)
	}
}
