package gcscope

import (
	"runtime/debug"
	"sync"
	"testing"
)

// readGOGC reads the current target without disturbing it (set-and-set-back).
func readGOGC() int {
	v := debug.SetGCPercent(100)
	debug.SetGCPercent(v)
	return v
}

func TestLeaseSetsAndRestores(t *testing.T) {
	before := readGOGC()
	release := LeaseFn(before + 150)
	if got := readGOGC(); got != before+150 {
		t.Fatalf("GOGC under lease = %d, want %d", got, before+150)
	}
	release()
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after release = %d, want %d", got, before)
	}
}

func TestLeaseReleaseIdempotent(t *testing.T) {
	before := readGOGC()
	release := LeaseFn(before + 50)
	release()
	release() // second call must not restore again or underflow holders
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after double release = %d, want %d", got, before)
	}
	// The latch must still be usable.
	r2 := LeaseFn(before + 70)
	if got := readGOGC(); got != before+70 {
		t.Fatalf("GOGC under second lease = %d, want %d", got, before+70)
	}
	r2()
}

func TestLeaseSharedSamePercent(t *testing.T) {
	before := readGOGC()
	r1 := LeaseFn(before + 100)
	r2 := LeaseFn(before + 100) // same percent: shares, must not block
	r1()
	if got := readGOGC(); got != before+100 {
		t.Fatalf("GOGC after first of two releases = %d, want %d (still held)", got, before+100)
	}
	r2()
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after last release = %d, want %d", got, before)
	}
}

// TestLeaseConcurrentConflicting is the regression test for the raw
// SetGCPercent set/restore race: N goroutines each lease a different
// percent, hold it briefly, and release. Interleaved raw restores would
// leave the process on an arbitrary intermediate value; the lease must
// end exactly where it started.
func TestLeaseConcurrentConflicting(t *testing.T) {
	before := readGOGC()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(pct int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				release := LeaseFn(pct)
				if got := readGOGC(); got != pct {
					t.Errorf("GOGC under lease = %d, want %d", got, pct)
					release()
					return
				}
				release()
			}
		}(before + 100 + i*37)
	}
	wg.Wait()
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after all releases = %d, want %d", got, before)
	}
}

func TestWindowSolo(t *testing.T) {
	w := Begin()
	buf := make([]byte, 1<<20)
	_ = buf
	d := w.End()
	if d.Shared {
		t.Fatalf("solo window flagged Shared")
	}
	if d.BytesAlloc < 1<<20 {
		t.Fatalf("window missed the allocation: BytesAlloc = %d", d.BytesAlloc)
	}
	if d.Cycles < 0 || d.PauseNS < 0 {
		t.Fatalf("negative delta: %+v", d)
	}
}

func TestWindowOverlapFlagged(t *testing.T) {
	outer := Begin()
	inner := Begin() // strictly nested inside outer
	di := inner.End()
	do := outer.End()
	if !di.Shared {
		t.Fatalf("inner window not flagged Shared")
	}
	if !do.Shared {
		t.Fatalf("outer window not flagged Shared despite fully containing another")
	}
	// A fresh window after both closed must be solo again.
	if d := Begin().End(); d.Shared {
		t.Fatalf("window after overlap drained still flagged Shared")
	}
}

func TestWindowEndIdempotent(t *testing.T) {
	w := Begin()
	_ = w.End()
	if d := w.End(); d != (Delta{}) {
		t.Fatalf("second End returned non-zero delta: %+v", d)
	}
	if d := Begin().End(); d.Shared {
		t.Fatalf("active count corrupted by double End")
	}
}

func TestAdjustSoleHolder(t *testing.T) {
	before := readGOGC()
	l := Acquire(before + 100)
	if got := readGOGC(); got != before+100 {
		t.Fatalf("GOGC under lease = %d, want %d", got, before+100)
	}
	if !l.Adjust(before + 300) {
		t.Fatal("sole-holder Adjust refused")
	}
	if got := readGOGC(); got != before+300 {
		t.Fatalf("GOGC after Adjust = %d, want %d", got, before+300)
	}
	if l.Percent() != before+300 {
		t.Fatalf("Percent = %d, want %d", l.Percent(), before+300)
	}
	// The final release restores the pre-Acquire value, not the
	// adjusted one.
	l.Release()
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after release = %d, want %d (the pre-lease value)", got, before)
	}
	if l.Adjust(before + 500) {
		t.Fatal("Adjust on a released lease succeeded")
	}
	if got := readGOGC(); got != before {
		t.Fatalf("released Adjust moved GOGC to %d", got)
	}
}

// TestAdjustContention is the two-goroutine contention test: a shared
// lease must refuse Adjust (no mid-run SetGCPercent fights), and a
// successful Adjust must wake an acquirer waiting for exactly the new
// percent.
func TestAdjustContention(t *testing.T) {
	before := readGOGC()
	a := Acquire(before + 100)
	b := Acquire(before + 100) // sharer

	if a.Adjust(before + 200) {
		t.Fatal("Adjust succeeded with the lease shared")
	}
	if got := readGOGC(); got != before+100 {
		t.Fatalf("refused Adjust moved GOGC to %d", got)
	}

	// Second goroutine: blocks acquiring a different percent until a's
	// Adjust lands on it.
	acquired := make(chan *Lease)
	go func() { acquired <- Acquire(before + 200) }()
	select {
	case <-acquired:
		t.Fatal("conflicting Acquire did not block")
	default:
	}

	b.Release() // a is now sole holder
	if !a.Adjust(before + 200) {
		t.Fatal("sole-holder Adjust refused after sharer release")
	}
	c := <-acquired // woken by the Adjust broadcast, joins at +200
	if got := readGOGC(); got != before+200 {
		t.Fatalf("GOGC = %d, want %d", got, before+200)
	}

	// Shared again: both sides' Adjusts must refuse.
	if a.Adjust(before+400) || c.Adjust(before+400) {
		t.Fatal("Adjust succeeded on a re-shared lease")
	}
	c.Release()
	a.Release()
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after all releases = %d, want %d", got, before)
	}
}

func TestAdjustSamePercentNoop(t *testing.T) {
	before := readGOGC()
	a := Acquire(before + 100)
	b := Acquire(before + 100)
	defer a.Release()
	defer b.Release()
	// Even a no-op Adjust refuses while shared: the caller must not
	// learn "I may move this knob".
	if a.Adjust(before + 100) {
		t.Fatal("shared same-percent Adjust succeeded")
	}
}
