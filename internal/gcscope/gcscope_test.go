package gcscope

import (
	"runtime/debug"
	"sync"
	"testing"
)

// readGOGC reads the current target without disturbing it (set-and-set-back).
func readGOGC() int {
	v := debug.SetGCPercent(100)
	debug.SetGCPercent(v)
	return v
}

func TestLeaseSetsAndRestores(t *testing.T) {
	before := readGOGC()
	release := Lease(before + 150)
	if got := readGOGC(); got != before+150 {
		t.Fatalf("GOGC under lease = %d, want %d", got, before+150)
	}
	release()
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after release = %d, want %d", got, before)
	}
}

func TestLeaseReleaseIdempotent(t *testing.T) {
	before := readGOGC()
	release := Lease(before + 50)
	release()
	release() // second call must not restore again or underflow holders
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after double release = %d, want %d", got, before)
	}
	// The latch must still be usable.
	r2 := Lease(before + 70)
	if got := readGOGC(); got != before+70 {
		t.Fatalf("GOGC under second lease = %d, want %d", got, before+70)
	}
	r2()
}

func TestLeaseSharedSamePercent(t *testing.T) {
	before := readGOGC()
	r1 := Lease(before + 100)
	r2 := Lease(before + 100) // same percent: shares, must not block
	r1()
	if got := readGOGC(); got != before+100 {
		t.Fatalf("GOGC after first of two releases = %d, want %d (still held)", got, before+100)
	}
	r2()
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after last release = %d, want %d", got, before)
	}
}

// TestLeaseConcurrentConflicting is the regression test for the raw
// SetGCPercent set/restore race: N goroutines each lease a different
// percent, hold it briefly, and release. Interleaved raw restores would
// leave the process on an arbitrary intermediate value; the lease must
// end exactly where it started.
func TestLeaseConcurrentConflicting(t *testing.T) {
	before := readGOGC()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(pct int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				release := Lease(pct)
				if got := readGOGC(); got != pct {
					t.Errorf("GOGC under lease = %d, want %d", got, pct)
					release()
					return
				}
				release()
			}
		}(before + 100 + i*37)
	}
	wg.Wait()
	if got := readGOGC(); got != before {
		t.Fatalf("GOGC after all releases = %d, want %d", got, before)
	}
}

func TestWindowSolo(t *testing.T) {
	w := Begin()
	buf := make([]byte, 1<<20)
	_ = buf
	d := w.End()
	if d.Shared {
		t.Fatalf("solo window flagged Shared")
	}
	if d.BytesAlloc < 1<<20 {
		t.Fatalf("window missed the allocation: BytesAlloc = %d", d.BytesAlloc)
	}
	if d.Cycles < 0 || d.PauseNS < 0 {
		t.Fatalf("negative delta: %+v", d)
	}
}

func TestWindowOverlapFlagged(t *testing.T) {
	outer := Begin()
	inner := Begin() // strictly nested inside outer
	di := inner.End()
	do := outer.End()
	if !di.Shared {
		t.Fatalf("inner window not flagged Shared")
	}
	if !do.Shared {
		t.Fatalf("outer window not flagged Shared despite fully containing another")
	}
	// A fresh window after both closed must be solo again.
	if d := Begin().End(); d.Shared {
		t.Fatalf("window after overlap drained still flagged Shared")
	}
}

func TestWindowEndIdempotent(t *testing.T) {
	w := Begin()
	_ = w.End()
	if d := w.End(); d != (Delta{}) {
		t.Fatalf("second End returned non-zero delta: %+v", d)
	}
	if d := Begin().End(); d.Shared {
		t.Fatalf("active count corrupted by double End")
	}
}
