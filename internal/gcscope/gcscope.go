// Package gcscope scopes the process-global pieces of Go's GC that the
// native backends' telemetry touches, so concurrent runs (and resident-
// service jobs) stop corrupting each other.
//
// Two global resources need discipline:
//
//   - debug.SetGCPercent is a process-wide knob. Two overlapping runs
//     that each "set and restore" it interleave their restores: run A
//     (prev 100) sets 200, run B reads prev 200 and sets 400, A
//     restores 100 mid-flight under B, and B finally "restores" 200 —
//     the process ends on the wrong target and neither run measured
//     under the GOGC it asked for. Lease serializes the knob with a
//     refcounted reader/writer-style latch: runs asking for the same
//     percent share the lease; a run asking for a different percent
//     waits its turn; the original value is restored exactly once, when
//     the last holder releases.
//
//   - runtime.ReadMemStats deltas are windows over process-global
//     monotone counters. Overlapping windows are not *wrong* — the
//     counters never tear — but each window silently absorbs the other
//     run's cycles, pauses and allocation. Window tracks overlap
//     explicitly: a delta taken while any other window was open (even
//     one that began and ended entirely inside it) is flagged Shared,
//     so telemetry consumers can attribute it to the process, not the
//     run.
//
// The resident service (internal/serve) leans on both: the pool owns
// one long-lived window for pool-level GC telemetry, per-job results
// carry no GC claim at all, and job-level GOGC pinning is simply not
// offered — the pool's lease is taken once at startup.
package gcscope

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// gogc is the lease state for the process-wide GC-percent knob.
var gogc struct {
	mu      sync.Mutex
	cond    *sync.Cond
	holders int
	percent int // percent in force while holders > 0
	prev    int // value to restore when the last holder releases
}

func init() { gogc.cond = sync.NewCond(&gogc.mu) }

// A Lease is one held claim on the process GC-percent knob, acquired
// with Acquire. It adds one capability the plain release closure could
// not offer safely: a mid-lease Adjust that moves the target without
// an unlease/re-lease gap another run could race into.
type Lease struct {
	mu       sync.Mutex
	percent  int
	released bool
}

// Acquire pins the process GC target to percent (-1 disables
// collection, as debug.SetGCPercent) until Release. Concurrent leases
// for the same percent share; a lease for a different percent blocks
// until every current holder releases (or a sole holder Adjusts onto
// the wanted percent). The pre-lease value is restored exactly once,
// when the last holder releases — Adjust never changes what gets
// restored.
func Acquire(percent int) *Lease {
	gogc.mu.Lock()
	for gogc.holders > 0 && gogc.percent != percent {
		gogc.cond.Wait()
	}
	if gogc.holders == 0 {
		gogc.prev = debug.SetGCPercent(percent)
		gogc.percent = percent
	}
	gogc.holders++
	gogc.mu.Unlock()
	return &Lease{percent: percent}
}

// Release ends the lease; the last holder out restores the pre-lease
// GC percent. Idempotent.
func (l *Lease) Release() {
	l.mu.Lock()
	if l.released {
		l.mu.Unlock()
		return
	}
	l.released = true
	l.mu.Unlock()

	gogc.mu.Lock()
	gogc.holders--
	if gogc.holders == 0 {
		debug.SetGCPercent(gogc.prev)
	}
	gogc.cond.Broadcast()
	gogc.mu.Unlock()
}

// Adjust moves the leased GC target mid-lease and reports whether it
// did. It succeeds only when this lease is the knob's sole holder:
// with the lease shared, moving the target would silently change the
// GOGC another run believes it is measuring under, so Adjust refuses
// and the caller (the autotune controller) backs off. A successful
// Adjust wakes acquirers blocked on a different percent — one waiting
// for exactly the new value joins as a sharer, after which further
// Adjusts fail until it releases. The value restored by the final
// Release stays the original pre-Acquire percent.
func (l *Lease) Adjust(percent int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		return false
	}
	gogc.mu.Lock()
	defer gogc.mu.Unlock()
	if gogc.holders != 1 {
		return false
	}
	if gogc.percent != percent {
		debug.SetGCPercent(percent)
		gogc.percent = percent
		gogc.cond.Broadcast()
	}
	l.percent = percent
	return true
}

// Percent reports the GC target this lease last asked for (via
// Acquire or a successful Adjust).
func (l *Lease) Percent() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.percent
}

// LeaseFn pins the GC target and returns just the release closure —
// the original API shape, for callers that never adjust.
func LeaseFn(percent int) (release func()) {
	l := Acquire(percent)
	return l.Release
}

// windowState tracks open memstats windows for overlap detection.
var windowState struct {
	active atomic.Int64 // windows currently open
	births atomic.Int64 // windows ever opened
}

// Delta is what the collector did between a window's Begin and End.
type Delta struct {
	// Cycles is the number of GC cycles completed during the window.
	Cycles int64
	// PauseNS is the total stop-the-world pause time during the window.
	PauseNS int64
	// BytesAlloc is the cumulative heap allocation of the window.
	BytesAlloc int64
	// Shared reports that another window overlapped this one, so the
	// delta contains that run's GC activity too: it describes the
	// process over the interval, not this run exclusively.
	Shared bool
}

// Window is one open memstats measurement interval.
type Window struct {
	start    runtime.MemStats
	births   int64
	overlaps bool
	ended    bool
}

// Begin opens a measurement window over the process GC counters.
func Begin() *Window {
	w := &Window{}
	if windowState.active.Add(1) > 1 {
		w.overlaps = true
	}
	w.births = windowState.births.Add(1)
	runtime.ReadMemStats(&w.start)
	return w
}

// Sample returns the delta accumulated so far without closing the
// window — the read a long-lived window (a resident pool's) serves to
// mid-flight observers. Shared reflects overlap observed up to now.
func (w *Window) Sample() Delta {
	if w.ended {
		return Delta{}
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	shared := w.overlaps ||
		windowState.births.Load() != w.births ||
		windowState.active.Load() > 1
	return Delta{
		Cycles:     int64(after.NumGC) - int64(w.start.NumGC),
		PauseNS:    int64(after.PauseTotalNs) - int64(w.start.PauseTotalNs),
		BytesAlloc: int64(after.TotalAlloc) - int64(w.start.TotalAlloc),
		Shared:     shared,
	}
}

// End closes the window and returns the process-counter delta, flagged
// Shared when any other window overlapped it — whether it was already
// open at Begin, outlives this End, or began and ended entirely inside.
func (w *Window) End() Delta {
	if w.ended {
		return Delta{}
	}
	w.ended = true
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	// Order matters: read births before decrementing active, so a
	// window racing to Begin between the two reads is seen by at least
	// one side (it either bumped births already, or will still see our
	// active count).
	if windowState.births.Load() != w.births {
		w.overlaps = true
	}
	if windowState.active.Add(-1) > 0 {
		w.overlaps = true
	}
	return Delta{
		Cycles:     int64(after.NumGC) - int64(w.start.NumGC),
		PauseNS:    int64(after.PauseTotalNs) - int64(w.start.PauseTotalNs),
		BytesAlloc: int64(after.TotalAlloc) - int64(w.start.TotalAlloc),
		Shared:     w.overlaps,
	}
}
