package machine

import (
	"fmt"
	"testing"

	"parhask/internal/sim"
)

// runBurners spawns one task per work item on a CPU with the given core
// count, each starting at the given offset, and returns the finish time of
// each task in spawn order.
func runBurners(t *testing.T, cores int, items []struct {
	start sim.Time
	work  int64
}) []sim.Time {
	t.Helper()
	s := sim.New(1)
	m := New(s, cores)
	ends := make([]sim.Time, len(items))
	for i, it := range items {
		i, it := i, it
		s.Spawn(fmt.Sprintf("b%d", i), func(tk *sim.Task) {
			if it.start > 0 {
				tk.Advance(it.start)
			}
			m.Burn(tk, it.work)
			ends[i] = tk.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return ends
}

func TestSingleBurnerFullSpeed(t *testing.T) {
	ends := runBurners(t, 4, []struct {
		start sim.Time
		work  int64
	}{{0, 1000}})
	if ends[0] != 1000 {
		t.Fatalf("end = %d, want 1000", ends[0])
	}
}

func TestTwoBurnersOneCoreShare(t *testing.T) {
	ends := runBurners(t, 1, []struct {
		start sim.Time
		work  int64
	}{{0, 100}, {0, 100}})
	for i, e := range ends {
		if e < 199 || e > 201 {
			t.Fatalf("end[%d] = %d, want ~200", i, e)
		}
	}
}

func TestTwoBurnersTwoCoresNoInterference(t *testing.T) {
	ends := runBurners(t, 2, []struct {
		start sim.Time
		work  int64
	}{{0, 100}, {0, 100}})
	for i, e := range ends {
		if e != 100 {
			t.Fatalf("end[%d] = %d, want 100", i, e)
		}
	}
}

func TestThreeBurnersTwoCores(t *testing.T) {
	// Rate 2/3 each: 300 units of work finish at ~450.
	ends := runBurners(t, 2, []struct {
		start sim.Time
		work  int64
	}{{0, 300}, {0, 300}, {0, 300}})
	for i, e := range ends {
		if e < 448 || e > 452 {
			t.Fatalf("end[%d] = %d, want ~450", i, e)
		}
	}
}

func TestStaggeredArrival(t *testing.T) {
	// 1 core. b0: 100 work from t=0. b1: 100 work from t=50.
	// t=0..50: b0 alone, does 50. t=50..150: both at 1/2, b0 does its
	// remaining 50 (done at 150), b1 does 50. t=150..200: b1 alone.
	ends := runBurners(t, 1, []struct {
		start sim.Time
		work  int64
	}{{0, 100}, {50, 100}})
	if ends[0] < 149 || ends[0] > 151 {
		t.Fatalf("end[0] = %d, want ~150", ends[0])
	}
	if ends[1] < 199 || ends[1] > 201 {
		t.Fatalf("end[1] = %d, want ~200", ends[1])
	}
}

func TestManyVirtualEntities(t *testing.T) {
	// 17 entities on 8 cores, equal work: each runs at 8/17 speed.
	items := make([]struct {
		start sim.Time
		work  int64
	}, 17)
	for i := range items {
		items[i].work = 8000
	}
	ends := runBurners(t, 8, items)
	want := sim.Time(8000 * 17 / 8) // = 17000
	for i, e := range ends {
		if e < want-20 || e > want+20 {
			t.Fatalf("end[%d] = %d, want ~%d", i, e, want)
		}
	}
}

func TestWorkConservation(t *testing.T) {
	// Total busy core-time must equal total work issued, regardless of
	// arrival pattern.
	s := sim.New(1)
	m := New(s, 3)
	var total int64
	for i := 0; i < 10; i++ {
		i := i
		work := int64(100 + 137*i)
		total += work
		s.Spawn(fmt.Sprintf("b%d", i), func(tk *sim.Task) {
			tk.Advance(sim.Time(i * 37))
			m.Burn(tk, work)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	busy := m.BusyTime()
	if busy < float64(total)-5 || busy > float64(total)+5 {
		t.Fatalf("busy = %v, want ~%d", busy, total)
	}
}

func TestZeroWorkIsFree(t *testing.T) {
	s := sim.New(1)
	m := New(s, 1)
	s.Spawn("b", func(tk *sim.Task) {
		m.Burn(tk, 0)
		if tk.Now() != 0 {
			t.Errorf("Burn(0) advanced time to %d", tk.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicUnderContention(t *testing.T) {
	run := func() []sim.Time {
		items := make([]struct {
			start sim.Time
			work  int64
		}, 9)
		for i := range items {
			items[i].start = sim.Time(i * 13)
			items[i].work = int64(500 + i*77)
		}
		return runBurners(t, 4, items)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBurnSequenceOnSameTask(t *testing.T) {
	s := sim.New(1)
	m := New(s, 1)
	s.Spawn("b", func(tk *sim.Task) {
		m.Burn(tk, 100)
		m.Burn(tk, 200)
		if tk.Now() != 300 {
			t.Errorf("now = %d, want 300", tk.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
