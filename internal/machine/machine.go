// Package machine models a multicore CPU inside the discrete-event
// simulation.
//
// A CPU has a fixed number of cores. Simulated entities (capability
// worker loops, Eden PEs) consume processor time by calling Burn, which
// advances the calling task through virtual time at the machine's current
// fair share: with k entities burning on c cores, each progresses at rate
// min(1, c/k). This is generalized-processor-sharing (GPS), the standard
// fluid approximation of an OS timeslicing scheduler. When at most c
// entities are runnable — the usual case for a GpH runtime with one
// capability per core — every Burn advances at full speed and the model
// is exact. With more runnable entities than cores — Eden's "virtual PEs",
// e.g. 17 PVM nodes on 8 cores in the paper's Fig. 4 — the model
// reproduces the OS-level timeslicing those runs relied on.
package machine

import (
	"fmt"
	"math"

	"parhask/internal/sim"
)

// CPU is a simulated multicore processor.
type CPU struct {
	sim   *sim.Sim
	cores int
	// burners is an ordered slice (not a map) so that rebalance wakes
	// entities in a deterministic order — a requirement for reproducible
	// simulations.
	burners []*burner

	// busyIntegral accumulates Σ (active rate × elapsed) so utilisation
	// statistics can be reported; updated lazily at membership changes.
	busyIntegral float64
	lastChange   sim.Time
}

type burner struct {
	t          *sim.Task
	remaining  float64 // ns of work at full speed
	rate       float64 // current share, in (0, 1]
	lastSettle sim.Time
}

// New returns a CPU with the given core count attached to s.
func New(s *sim.Sim, cores int) *CPU {
	if cores <= 0 {
		panic(fmt.Sprintf("machine: invalid core count %d", cores))
	}
	return &CPU{sim: s, cores: cores}
}

// Cores returns the number of cores.
func (m *CPU) Cores() int { return m.cores }

// Runnable returns the number of entities currently burning CPU.
func (m *CPU) Runnable() int { return len(m.burners) }

// BusyTime returns the integral of busy-core-time so far (core·ns).
func (m *CPU) BusyTime() float64 {
	m.accountBusy()
	return m.busyIntegral
}

func (m *CPU) accountBusy() {
	now := m.sim.Now()
	active := float64(len(m.burners))
	if active > float64(m.cores) {
		active = float64(m.cores)
	}
	m.busyIntegral += active * float64(now-m.lastChange)
	m.lastChange = now
}

// Burn consumes `work` nanoseconds of full-speed processor time on behalf
// of task t, blocking t in virtual time until the work completes. The
// elapsed virtual time is work / share, where the share varies as other
// entities start and stop burning.
func (m *CPU) Burn(t *sim.Task, work int64) {
	if work <= 0 {
		return
	}
	b := &burner{t: t, remaining: float64(work), lastSettle: t.Now()}
	m.add(b)
	const eps = 1e-3
	for {
		eta := sim.Time(math.Ceil(b.remaining / b.rate))
		if eta < 1 {
			eta = 1
		}
		t.SleepInterruptible(eta)
		b.settle(t.Now())
		if b.remaining <= eps {
			break
		}
		// Woken early by a rebalance: loop with the updated rate.
	}
	m.remove(b)
}

func (b *burner) settle(now sim.Time) {
	elapsed := float64(now - b.lastSettle)
	b.remaining -= elapsed * b.rate
	b.lastSettle = now
}

func (m *CPU) add(b *burner) {
	m.accountBusy()
	m.burners = append(m.burners, b)
	m.rebalance(b)
}

func (m *CPU) remove(b *burner) {
	m.accountBusy()
	for i, x := range m.burners {
		if x == b {
			m.burners = append(m.burners[:i], m.burners[i+1:]...)
			break
		}
	}
	m.rebalance(nil)
}

// rebalance recomputes every burner's share after a membership change and
// wakes sleeping burners so they re-plan their completion. The burner
// `except` (the caller, which is about to compute its own ETA) is settled
// and re-rated but not unparked.
func (m *CPU) rebalance(except *burner) {
	n := len(m.burners)
	if n == 0 {
		return
	}
	rate := 1.0
	if n > m.cores {
		rate = float64(m.cores) / float64(n)
	}
	now := m.sim.Now()
	for _, b := range m.burners {
		b.settle(now)
		b.rate = rate
		if b != except {
			b.t.Unpark()
		}
	}
}
