package skel

import (
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"parhask/internal/eden"
	"parhask/internal/graph"
	"parhask/internal/nativeeden"
	"parhask/internal/pe"
)

// runSupervised drives SupervisedMW on the native Eden backend under a
// watchdog deadline: the regression mode of every supervision bug is a
// hang, so no test is allowed to wait on a placeholder unguarded.
func runSupervised(t *testing.T, pes, nWorkers, prefetch, budget int, work TaskFunc, tasks []graph.Value) ([]graph.Value, error, error) {
	t.Helper()
	cfg := nativeeden.NewConfig(pes)
	cfg.Deadline = 20 * time.Second
	var farmRes []graph.Value
	var farmErr error
	_, runErr := nativeeden.Run(cfg, func(p pe.Ctx) graph.Value {
		farmRes, farmErr = SupervisedMW(p, "farm", nWorkers, prefetch, budget, work, tasks)
		return true
	})
	return farmRes, farmErr, runErr
}

func intTasks(n int) []graph.Value {
	xs := make([]graph.Value, n)
	for i := range xs {
		xs[i] = i + 1
	}
	return xs
}

func sortedInts(t *testing.T, vs []graph.Value) []int {
	t.Helper()
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = v.(int)
	}
	sort.Ints(out)
	return out
}

func TestSupervisedMWNoFaultsMatchesMasterWorker(t *testing.T) {
	res, ferr, rerr := runSupervised(t, 4, 3, 2, 1,
		func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
			return nil, task.(int) * 2
		}, intTasks(12))
	if rerr != nil || ferr != nil {
		t.Fatalf("run err = %v, farm err = %v", rerr, ferr)
	}
	got := sortedInts(t, res)
	for i, v := range got {
		if v != 2*(i+1) {
			t.Fatalf("results = %v", got)
		}
	}
}

func TestSupervisedMWRecoversFromWorkerDeath(t *testing.T) {
	// Task 7 kills the first worker that touches it; the retry budget
	// covers one death, so the re-dispatched task must complete on a
	// survivor and the result set must be whole — no task lost, none
	// duplicated.
	var tripped atomic.Bool
	res, ferr, rerr := runSupervised(t, 4, 3, 2, 1,
		func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
			if task.(int) == 7 && tripped.CompareAndSwap(false, true) {
				panic("chaos: task 7")
			}
			return nil, task.(int) * 2
		}, intTasks(20))
	if rerr != nil {
		t.Fatalf("the worker death must stay contained, run err = %v", rerr)
	}
	if ferr != nil {
		t.Fatalf("one death is within budget, farm err = %v", ferr)
	}
	got := sortedInts(t, res)
	if len(got) != 20 {
		t.Fatalf("got %d results, want 20: %v", len(got), got)
	}
	for i, v := range got {
		if v != 2*(i+1) {
			t.Fatalf("results = %v", got)
		}
	}
	if !tripped.Load() {
		t.Fatal("the fault never fired")
	}
}

func TestSupervisedMWExhaustsBudget(t *testing.T) {
	// A task that always panics kills every worker it is re-dispatched
	// to; the farm must give up with a structured *WorkerFailuresError
	// instead of hanging or aborting the whole run.
	_, ferr, rerr := runSupervised(t, 4, 3, 1, 1,
		func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
			if task.(int) == 3 {
				panic("chaos: poison task")
			}
			return nil, task.(int)
		}, intTasks(8))
	if rerr != nil {
		t.Fatalf("worker deaths must stay contained, run err = %v", rerr)
	}
	var wf *WorkerFailuresError
	if !errors.As(ferr, &wf) {
		t.Fatalf("farm err = %v, want *WorkerFailuresError", ferr)
	}
	if len(wf.Failures) == 0 || wf.Budget != 1 || wf.TasksLost == 0 {
		t.Fatalf("exhaustion fields: %+v", wf)
	}
	for _, f := range wf.Failures {
		if f.Err == "" || f.Name == "" {
			t.Fatalf("death notice incomplete: %+v", f)
		}
	}
}

func TestSupervisedMWAllWorkersDead(t *testing.T) {
	// One worker, generous budget: its death still leaves no one to run
	// the remaining tasks, which must be reported, not spun on.
	_, ferr, rerr := runSupervised(t, 2, 1, 1, 5,
		func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
			panic("chaos: every task")
		}, intTasks(4))
	if rerr != nil {
		t.Fatalf("run err = %v", rerr)
	}
	var wf *WorkerFailuresError
	if !errors.As(ferr, &wf) {
		t.Fatalf("farm err = %v, want *WorkerFailuresError", ferr)
	}
	if wf.TasksLost == 0 {
		t.Fatalf("lost tasks must be counted: %+v", wf)
	}
}

func TestSupervisedMWFallbackOnSimulator(t *testing.T) {
	// The virtual-time simulator has no supervision interfaces:
	// SupervisedMW must degrade to the fail-fast MasterWorker and still
	// compute the right answer.
	res := runE(t, eden.NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		vs, err := SupervisedMW(p, "farm", 3, 2, 1,
			func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
				return nil, task.(int) * 3
			}, intTasks(9))
		if err != nil {
			panic(err)
		}
		total := 0
		for _, v := range vs {
			total += v.(int)
		}
		return total
	})
	want := 0
	for i := 1; i <= 9; i++ {
		want += 3 * i
	}
	if res.Value != want {
		t.Fatalf("value = %v, want %d", res.Value, want)
	}
}
