package skel

import (
	"fmt"

	"parhask/internal/graph"
	"parhask/internal/pe"
)

// WorkerFailuresError reports that SupervisedMW could not finish the
// task bag: worker deaths exceeded the retry budget, or every worker
// died with work left. It carries each death notice so chaos harnesses
// can classify the failure without string matching.
type WorkerFailuresError struct {
	// Skeleton is the farm's name.
	Skeleton string
	// Budget is the number of worker deaths the call tolerated.
	Budget int
	// Failures are the death notices, in the order they were handled.
	Failures []pe.ThreadFailure
	// TasksLost is how many tasks were still unfinished when the farm
	// gave up.
	TasksLost int
}

func (e *WorkerFailuresError) Error() string {
	return fmt.Sprintf("skel: %s: %d worker failure(s) exceeded retry budget %d (%d tasks unfinished); first: PE %d %q: %s",
		e.Skeleton, len(e.Failures), e.Budget, e.TasksLost, e.Failures[0].PE, e.Failures[0].Name, e.Failures[0].Err)
}

// smwState is the supervised farm's master-side coordination state. It
// lives on the master PE and is mutated by the collector and monitor
// threads; threads of one PE interleave only at explicit yield points,
// so the plain mutations between communications are atomic (the same
// discipline as mwState).
type smwState struct {
	queue       []graph.Value
	outstanding int
	results     []graph.Value
	pending     []int // worker indices waiting for a task
	handles     []pe.StreamOut
	inflight    [][]graph.Value // per worker: dispatched, not yet completed (FIFO)
	dead        []bool
	live        int
	deaths      int
	budget      int
	failures    []pe.ThreadFailure
	err         error
	closed      bool
	collectors  int
	done        *graph.Thunk
}

func (st *smwState) dispatch(p pe.Ctx, i int) {
	if st.closed || st.dead[i] {
		return
	}
	if len(st.queue) == 0 {
		st.pending = append(st.pending, i)
		return
	}
	t := st.queue[0]
	st.queue = st.queue[1:]
	st.outstanding++
	// Recorded before the send: if the worker dies, everything still in
	// inflight[i] — including tasks racing into its stream after the
	// death — is requeued by its collector.
	st.inflight[i] = append(st.inflight[i], t)
	p.StreamSend(st.handles[i], t)
}

func (st *smwState) drainPending(p pe.Ctx) {
	for len(st.pending) > 0 && len(st.queue) > 0 && !st.closed {
		i := st.pending[0]
		st.pending = st.pending[1:]
		st.dispatch(p, i)
	}
}

// purgePending removes worker i from the free-slot list (it died).
func (st *smwState) purgePending(i int) {
	keep := st.pending[:0]
	for _, j := range st.pending {
		if j != i {
			keep = append(keep, j)
		}
	}
	st.pending = keep
}

func (st *smwState) checkDone(p pe.Ctx) {
	if st.closed || st.outstanding > 0 || len(st.queue) > 0 {
		return
	}
	st.close(p)
}

// close shuts the farm down: surviving workers see their task streams
// end and exit cleanly.
func (st *smwState) close(p pe.Ctx) {
	if st.closed {
		return
	}
	st.closed = true
	for i, wh := range st.handles {
		if !st.dead[i] {
			p.StreamClose(wh)
		}
	}
}

// giveUp records the structured exhaustion error and shuts down.
func (st *smwState) giveUp(p pe.Ctx, name string) {
	if st.err == nil {
		st.err = &WorkerFailuresError{
			Skeleton:  name,
			Budget:    st.budget,
			Failures:  append([]pe.ThreadFailure(nil), st.failures...),
			TasksLost: len(st.queue) + st.outstanding,
		}
	}
	st.close(p)
}

// SupervisedMW is MasterWorker with worker supervision: workers are
// spawned supervised, a per-worker monitor watches for death notices,
// and a dead worker's outstanding tasks are re-dispatched to the
// survivors. budget caps how many worker deaths the farm tolerates;
// exceeding it (or losing every worker with work left) returns the
// partial results plus a structured *WorkerFailuresError. On backends
// without supervision support (the virtual-time simulator), it
// degrades to the fail-fast MasterWorker.
//
// The no-duplicate guarantee rides on stream ordering: a worker's
// results arrive in dispatch order, and its death notice is sent after
// its last result, so when the monitor cancels the result stream the
// collector has drained exactly the completed prefix — what remains in
// the inflight list is lost work, nothing else.
func SupervisedMW(p pe.Ctx, name string, nWorkers, prefetch, budget int, work TaskFunc, initial []graph.Value) ([]graph.Value, error) {
	if nWorkers <= 0 {
		panic("skel: SupervisedMW needs at least one worker")
	}
	sup, okS := p.(pe.SupervisedSpawner)
	_, okC := p.(pe.StreamCanceller)
	if !okS || !okC {
		return MasterWorker(p, name, nWorkers, prefetch, work, initial), nil
	}
	if prefetch <= 0 {
		prefetch = 1
	}
	st := &smwState{
		queue:      append([]graph.Value(nil), initial...),
		inflight:   make([][]graph.Value, nWorkers),
		dead:       make([]bool, nWorkers),
		live:       nWorkers,
		budget:     budget,
		collectors: nWorkers,
		done:       graph.NewPlaceholder(),
	}

	resIns := make([]pe.StreamIn, nWorkers)
	verdicts := make([]pe.Inport, nWorkers)
	for i := 0; i < nWorkers; i++ {
		dest := placement(p, i)
		taskIn, taskOut := p.NewStream(dest)
		resIn, resOut := p.NewStream(p.PE())
		st.handles = append(st.handles, taskOut)
		resIns[i] = resIn
		verdicts[i] = sup.SpawnSupervised(dest, fmt.Sprintf("%s-w%d", name, i), func(w pe.Ctx) {
			for {
				t, ok := w.StreamRecv(taskIn)
				if !ok {
					break
				}
				nt, res := work(w, t)
				w.StreamSend(resOut, mwResult{NewTasks: nt, Result: res})
			}
			w.StreamClose(resOut)
		})
	}

	for i := range st.handles {
		for k := 0; k < prefetch; k++ {
			st.dispatch(p, i)
		}
	}
	st.checkDone(p)

	// Per-worker monitor: receives the verdict and, on death, marks the
	// worker dead and cancels its result stream so the collector's drain
	// terminates at the completed prefix. The requeue itself happens in
	// the collector, after the drain, when inflight[i] is final.
	for i := 0; i < nWorkers; i++ {
		i := i
		p.ForkLocal(fmt.Sprintf("%s-mon%d", name, i), func(c pe.Ctx) {
			v := c.Receive(verdicts[i])
			if tf, died := v.(pe.ThreadFailure); died {
				st.dead[i] = true
				st.failures = append(st.failures, tf)
				st.purgePending(i)
				c.(pe.StreamCanceller).CancelStream(resIns[i])
			}
		})
	}

	for i := 0; i < nWorkers; i++ {
		i := i
		p.ForkLocal(fmt.Sprintf("%s-col%d", name, i), func(c pe.Ctx) {
			for {
				v, ok := c.StreamRecv(resIns[i])
				if !ok {
					break
				}
				r := v.(mwResult)
				st.outstanding--
				if len(st.inflight[i]) > 0 {
					st.inflight[i] = st.inflight[i][1:]
				}
				st.results = append(st.results, r.Result)
				st.queue = append(st.queue, r.NewTasks...)
				st.drainPending(c)
				st.dispatch(c, i)
				st.checkDone(c)
			}
			if st.dead[i] {
				// Requeue the lost work and decide whether the farm can
				// still finish.
				lost := st.inflight[i]
				st.inflight[i] = nil
				st.outstanding -= len(lost)
				st.queue = append(st.queue, lost...)
				st.live--
				st.deaths++
				if st.deaths > st.budget || (st.live == 0 && (len(st.queue) > 0 || st.outstanding > 0)) {
					st.giveUp(c, name)
				} else {
					st.drainPending(c)
					st.checkDone(c)
				}
			}
			st.collectors--
			if st.collectors == 0 {
				c.LocalResolve(st.done, true)
			}
		})
	}
	p.Await(st.done)
	return st.results, st.err
}
