package skel

import (
	"sort"
	"testing"

	"parhask/internal/eden"
	"parhask/internal/graph"
	"parhask/internal/pe"
)

func TestPipelineTransformsInOrder(t *testing.T) {
	res := runE(t, eden.NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, 10)
		for i := range inputs {
			inputs[i] = i
		}
		out := Pipeline(p, "pipe", []StageFunc{
			func(w pe.Ctx, v graph.Value) graph.Value { w.Burn(50_000); return v.(int) + 1 },
			func(w pe.Ctx, v graph.Value) graph.Value { w.Burn(50_000); return v.(int) * 2 },
			func(w pe.Ctx, v graph.Value) graph.Value { w.Burn(50_000); return v.(int) - 3 },
		}, inputs)
		return out
	})
	out := res.Value.([]graph.Value)
	if len(out) != 10 {
		t.Fatalf("got %d outputs", len(out))
	}
	for i, v := range out {
		want := (i+1)*2 - 3
		if v != want {
			t.Fatalf("out[%d] = %v, want %d", i, v, want)
		}
	}
}

func TestPipelineOverlapsStages(t *testing.T) {
	// k items through s equal stages must take ~ (k+s-1) stage-times,
	// not k·s: check we beat the sequential bound comfortably.
	const k, stageCost = 16, 2_000_000
	stage := func(w pe.Ctx, v graph.Value) graph.Value {
		w.Alloc(16 * 1024)
		w.Burn(stageCost)
		return v
	}
	res := runE(t, eden.NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, k)
		for i := range inputs {
			inputs[i] = i
		}
		Pipeline(p, "pipe", []StageFunc{stage, stage, stage}, inputs)
		return true
	})
	sequential := int64(k * 3 * stageCost)
	if res.Elapsed >= sequential*2/3 {
		t.Fatalf("elapsed %d shows no pipelining (sequential bound %d)", res.Elapsed, sequential)
	}
}

func TestPipelineEmptyStages(t *testing.T) {
	res := runE(t, eden.NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		out := Pipeline(p, "pipe", nil, []graph.Value{1, 2, 3})
		return len(out)
	})
	if res.Value != 3 {
		t.Fatalf("got %v", res.Value)
	}
}

// mergesortDC builds the divide-and-conquer description of mergesort.
func mergesortDC() DC {
	return DC{
		Trivial: func(prob graph.Value) bool { return len(prob.([]int)) <= 4 },
		Solve: func(w pe.Ctx, prob graph.Value) graph.Value {
			xs := append([]int(nil), prob.([]int)...)
			sort.Ints(xs)
			w.Burn(int64(len(xs)) * 2_000)
			return xs
		},
		Divide: func(w pe.Ctx, prob graph.Value) []graph.Value {
			xs := prob.([]int)
			mid := len(xs) / 2
			return []graph.Value{xs[:mid], xs[mid:]}
		},
		Combine: func(w pe.Ctx, prob graph.Value, subs []graph.Value) graph.Value {
			a, b := subs[0].([]int), subs[1].([]int)
			out := make([]int, 0, len(a)+len(b))
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				if a[i] <= b[j] {
					out = append(out, a[i])
					i++
				} else {
					out = append(out, b[j])
					j++
				}
			}
			out = append(out, a[i:]...)
			out = append(out, b[j:]...)
			w.Burn(int64(len(out)) * 500)
			return out
		},
	}
}

func TestDivideAndConquerMergesort(t *testing.T) {
	res := runE(t, eden.NewConfig(8, 8), func(p pe.Ctx) graph.Value {
		xs := make([]int, 257)
		for i := range xs {
			xs[i] = (i*7919 + 13) % 1000
		}
		return DivideAndConquer(p, "msort", 3, mergesortDC(), xs)
	})
	out := res.Value.([]int)
	if len(out) != 257 || !sort.IntsAreSorted(out) {
		t.Fatalf("not sorted: len=%d", len(out))
	}
}

func TestDivideAndConquerDepthZeroIsSequential(t *testing.T) {
	res := runE(t, eden.NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		xs := []int{5, 3, 1, 4, 2, 9, 7, 8, 6, 0}
		return DivideAndConquer(p, "msort", 0, mergesortDC(), xs)
	})
	out := res.Value.([]int)
	if !sort.IntsAreSorted(out) {
		t.Fatal("not sorted")
	}
	if res.Stats.Processes != 0 {
		t.Fatalf("depth 0 spawned %d processes", res.Stats.Processes)
	}
}

func TestDivideAndConquerSpawnsTree(t *testing.T) {
	res := runE(t, eden.NewConfig(8, 8), func(p pe.Ctx) graph.Value {
		xs := make([]int, 512)
		for i := range xs {
			xs[i] = 512 - i
		}
		return DivideAndConquer(p, "msort", 2, mergesortDC(), xs)
	})
	// Depth 2, binary divide: 1 + 2 remote children = 3 spawned procs.
	if res.Stats.Processes != 3 {
		t.Fatalf("processes = %d, want 3", res.Stats.Processes)
	}
	if !sort.IntsAreSorted(res.Value.([]int)) {
		t.Fatal("not sorted")
	}
}

func TestHierMasterWorker(t *testing.T) {
	res := runE(t, eden.NewConfig(9, 8), func(p pe.Ctx) graph.Value {
		tasks := make([]graph.Value, 40)
		for i := range tasks {
			tasks[i] = i
		}
		out := HierMasterWorker(p, "hmw", 2, 3, 2, 10,
			func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
				n := task.(int)
				w.Burn(int64(40_000 + 15_000*(n%7)))
				return nil, n * 3
			}, tasks)
		got := make([]int, len(out))
		for i, v := range out {
			got[i] = v.(int)
		}
		sort.Ints(got)
		return got
	})
	got := res.Value.([]int)
	if len(got) != 40 {
		t.Fatalf("got %d results, want 40", len(got))
	}
	for i, v := range got {
		if v != 3*i {
			t.Fatalf("sorted[%d] = %d, want %d", i, v, 3*i)
		}
	}
	// 2 submasters + 2*3 workers = 8 processes.
	if res.Stats.Processes != 8 {
		t.Fatalf("processes = %d, want 8", res.Stats.Processes)
	}
}

func TestHierMasterWorkerDynamicTasks(t *testing.T) {
	// Dynamic subtasks must be handled inside the submaster farms.
	res := runE(t, eden.NewConfig(7, 7), func(p pe.Ctx) graph.Value {
		out := HierMasterWorker(p, "hmw", 2, 2, 1, 2,
			func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
				n := task.(int)
				w.Burn(20_000)
				if n > 0 {
					return []graph.Value{n - 1}, 1
				}
				return nil, 1
			}, []graph.Value{3, 2})
		return len(out)
	})
	// Chains 3->2->1->0 and 2->1->0: 4 + 3 = 7 results.
	if res.Value != 7 {
		t.Fatalf("results = %v, want 7", res.Value)
	}
}

func TestMasterWorkerAtExplicitPlacement(t *testing.T) {
	res := runE(t, eden.NewConfig(6, 6), func(p pe.Ctx) graph.Value {
		pes := []int{2, 4}
		seen := map[int]bool{}
		MasterWorkerAt(p, "mwat", pes, 1,
			func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
				seen[w.PE()] = true
				return nil, task
			}, []graph.Value{1, 2, 3, 4, 5, 6})
		return seen[2] && seen[4] && !seen[1] && !seen[3]
	})
	if res.Value != true {
		t.Fatal("workers did not run on the requested PEs")
	}
}
