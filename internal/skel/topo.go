package skel

import (
	"fmt"

	"parhask/internal/graph"
	"parhask/internal/pe"
)

// RingNodeFunc is the behaviour of one ring node: it receives its
// initial input, a stream from its predecessor and a stream to its
// successor, and returns its final result. Topology skeletons like this
// capture the parallel interaction structure rather than the algorithm
// (§II-A).
type RingNodeFunc func(w pe.Ctx, idx int, input graph.Value,
	fromPred pe.StreamIn, toSucc pe.StreamOut) graph.Value

// Ring spawns n processes connected in a unidirectional ring (node i
// sends to node i+1 mod n) and returns the nodes' results in index
// order. Used by the paper's all-pairs shortest-paths program.
func Ring(p pe.Ctx, name string, n int, node RingNodeFunc, inputs []graph.Value) []graph.Value {
	if len(inputs) != n {
		panic(fmt.Sprintf("skel: Ring with %d nodes but %d inputs", n, len(inputs)))
	}
	pes := make([]int, n)
	for i := range pes {
		pes[i] = placement(p, i)
	}
	// ringIn[i] is node i's stream from its predecessor; ringOut[i] is
	// node i's stream to its successor: the pair (out=i, in=(i+1)%n)
	// shares one channel owned by node (i+1)%n's PE.
	ringIn := make([]pe.StreamIn, n)
	ringOut := make([]pe.StreamOut, n)
	for i := 0; i < n; i++ {
		succ := (i + 1) % n
		in, out := p.NewStream(pes[succ])
		ringIn[succ] = in
		ringOut[i] = out
	}
	resIns := make([]pe.Inport, n)
	for i := 0; i < n; i++ {
		i := i
		argIn, argOut := p.NewChan(pes[i])
		resIn, resOut := p.NewChan(p.PE())
		resIns[i] = resIn
		p.Spawn(pes[i], fmt.Sprintf("%s-n%d", name, i), func(w pe.Ctx) {
			w.Send(resOut, node(w, i, w.Receive(argIn), ringIn[i], ringOut[i]))
		})
		p.Send(argOut, inputs[i])
	}
	out := make([]graph.Value, n)
	for i, in := range resIns {
		out[i] = p.Receive(in)
	}
	return out
}

// TorusNodeFunc is the behaviour of one torus node at position (i, j):
// streams connect it to its four neighbours with wrap-around. The
// direction names match Cannon's algorithm: blocks of A shift left
// (send toLeft, receive fromRight) and blocks of B shift up (send toUp,
// receive fromBelow).
type TorusNodeFunc func(w pe.Ctx, i, j int, input graph.Value,
	fromRight pe.StreamIn, toLeft pe.StreamOut,
	fromBelow pe.StreamIn, toUp pe.StreamOut) graph.Value

// Torus spawns q×q processes in a torus topology and returns their
// results as a q×q matrix. It is the communication structure of the
// paper's Cannon matrix-multiplication program.
func Torus(p pe.Ctx, name string, q int, node TorusNodeFunc, inputs [][]graph.Value) [][]graph.Value {
	if len(inputs) != q {
		panic(fmt.Sprintf("skel: Torus q=%d but %d input rows", q, len(inputs)))
	}
	idx := func(i, j int) int { return i*q + j }
	pes := make([]int, q*q)
	for k := range pes {
		pes[k] = placement(p, k)
	}
	// Horizontal: node (i,j) sends left to (i, j-1); that channel is
	// fromRight for the receiver. Vertical: node (i,j) sends up to
	// (i-1, j); that channel is fromBelow for the receiver.
	toLeft := make([]pe.StreamOut, q*q)
	fromRight := make([]pe.StreamIn, q*q)
	toUp := make([]pe.StreamOut, q*q)
	fromBelow := make([]pe.StreamIn, q*q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			lj := (j - 1 + q) % q
			in, out := p.NewStream(pes[idx(i, lj)])
			toLeft[idx(i, j)] = out
			fromRight[idx(i, lj)] = in

			ui := (i - 1 + q) % q
			vin, vout := p.NewStream(pes[idx(ui, j)])
			toUp[idx(i, j)] = vout
			fromBelow[idx(ui, j)] = vin
		}
	}
	resIns := make([]pe.Inport, q*q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			i, j := i, j
			k := idx(i, j)
			argIn, argOut := p.NewChan(pes[k])
			resIn, resOut := p.NewChan(p.PE())
			resIns[k] = resIn
			p.Spawn(pes[k], fmt.Sprintf("%s-n%d_%d", name, i, j), func(w pe.Ctx) {
				w.Send(resOut, node(w, i, j, w.Receive(argIn),
					fromRight[k], toLeft[k], fromBelow[k], toUp[k]))
			})
			p.Send(argOut, inputs[i][j])
		}
	}
	out := make([][]graph.Value, q)
	for i := 0; i < q; i++ {
		out[i] = make([]graph.Value, q)
		for j := 0; j < q; j++ {
			out[i][j] = p.Receive(resIns[idx(i, j)])
		}
	}
	return out
}
