package skel

import (
	"fmt"

	"parhask/internal/eden"
	"parhask/internal/graph"
	"parhask/internal/pe"
)

// TaskFunc processes one task in a worker, optionally producing new
// tasks (enabling backtracking and branch-and-bound search trees, as the
// paper notes) along with the task's result.
type TaskFunc func(w pe.Ctx, task graph.Value) (newTasks []graph.Value, result graph.Value)

// mwResult is the packet a worker returns per task.
type mwResult struct {
	NewTasks []graph.Value
	Result   graph.Value
}

// PackedSize implements eden.Sized.
func (m mwResult) PackedSize() int64 {
	n := eden.SizeOf(m.Result) + 16
	for _, t := range m.NewTasks {
		n += eden.SizeOf(t)
	}
	return n
}

// mwState is the master's shared coordination state; it lives on the
// master PE and is mutated by the per-worker collector threads. Threads
// on one PE interleave only at explicit yield points, so the plain
// mutations between communications are atomic.
type mwState struct {
	queue       []graph.Value
	outstanding int
	results     []graph.Value
	pending     []pe.StreamOut // workers waiting for a task (one entry per free slot)
	handles     []pe.StreamOut
	closed      bool
	collectors  int
	done        *graph.Thunk
}

func (st *mwState) dispatch(p pe.Ctx, wh pe.StreamOut) {
	if st.closed {
		return
	}
	if len(st.queue) == 0 {
		st.pending = append(st.pending, wh)
		return
	}
	t := st.queue[0]
	st.queue = st.queue[1:]
	st.outstanding++
	p.StreamSend(wh, t)
}

func (st *mwState) drainPending(p pe.Ctx) {
	for len(st.pending) > 0 && len(st.queue) > 0 && !st.closed {
		wh := st.pending[0]
		st.pending = st.pending[1:]
		st.dispatch(p, wh)
	}
}

func (st *mwState) checkDone(p pe.Ctx) {
	if st.closed || st.outstanding > 0 || len(st.queue) > 0 {
		return
	}
	st.closed = true
	for _, wh := range st.handles {
		p.StreamClose(wh)
	}
}

// MasterWorker runs a dynamic bag-of-tasks farm (§II-A): nWorkers
// processes collectively consume a dynamically growing set of
// irregularly-sized tasks under the control of the calling (master)
// process. Each worker keeps up to prefetch tasks in flight to hide the
// master round-trip. Results are returned in completion order.
func MasterWorker(p pe.Ctx, name string, nWorkers, prefetch int, work TaskFunc, initial []graph.Value) []graph.Value {
	if nWorkers <= 0 {
		panic("skel: MasterWorker needs at least one worker")
	}
	pes := make([]int, nWorkers)
	for i := range pes {
		pes[i] = placement(p, i)
	}
	return MasterWorkerAt(p, name, pes, prefetch, work, initial)
}

// MasterWorkerAt is MasterWorker with explicit worker placement: worker
// i runs on workerPEs[i]. Hierarchical compositions use it to keep
// sub-farms on disjoint PE groups.
func MasterWorkerAt(p pe.Ctx, name string, workerPEs []int, prefetch int, work TaskFunc, initial []graph.Value) []graph.Value {
	nWorkers := len(workerPEs)
	if nWorkers <= 0 {
		panic("skel: MasterWorkerAt needs at least one worker PE")
	}
	if prefetch <= 0 {
		prefetch = 1
	}
	st := &mwState{
		queue:      append([]graph.Value(nil), initial...),
		collectors: nWorkers,
		done:       graph.NewPlaceholder(),
	}

	resIns := make([]pe.StreamIn, nWorkers)
	for i := 0; i < nWorkers; i++ {
		dest := workerPEs[i]
		taskIn, taskOut := p.NewStream(dest)
		resIn, resOut := p.NewStream(p.PE())
		st.handles = append(st.handles, taskOut)
		resIns[i] = resIn
		p.Spawn(dest, fmt.Sprintf("%s-w%d", name, i), func(w pe.Ctx) {
			for {
				t, ok := w.StreamRecv(taskIn)
				if !ok {
					break
				}
				nt, res := work(w, t)
				w.StreamSend(resOut, mwResult{NewTasks: nt, Result: res})
			}
			w.StreamClose(resOut)
		})
	}

	// Prime every worker with prefetch tasks.
	for _, wh := range st.handles {
		for k := 0; k < prefetch; k++ {
			st.dispatch(p, wh)
		}
	}
	st.checkDone(p) // handles the empty-initial-task-list edge case

	// One collector thread per worker merges the result streams (Eden's
	// nondeterministic merge; deterministic here by simulation order).
	for i := 0; i < nWorkers; i++ {
		i := i
		p.ForkLocal(fmt.Sprintf("%s-col%d", name, i), func(c pe.Ctx) {
			for {
				v, ok := c.StreamRecv(resIns[i])
				if !ok {
					break
				}
				r := v.(mwResult)
				st.outstanding--
				st.results = append(st.results, r.Result)
				st.queue = append(st.queue, r.NewTasks...)
				st.drainPending(c)
				st.dispatch(c, st.handles[i])
				st.checkDone(c)
			}
			st.collectors--
			if st.collectors == 0 {
				c.LocalResolve(st.done, true)
			}
		})
	}
	p.Await(st.done)
	return st.results
}
