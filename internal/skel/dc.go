package skel

import (
	"fmt"

	"parhask/internal/graph"
	"parhask/internal/pe"
)

// DC describes a divide-and-conquer algorithm for the DivideAndConquer
// skeleton.
type DC struct {
	// Trivial reports whether a problem should be solved directly.
	Trivial func(prob graph.Value) bool
	// Solve handles a trivial problem.
	Solve func(w pe.Ctx, prob graph.Value) graph.Value
	// Divide splits a problem into subproblems.
	Divide func(w pe.Ctx, prob graph.Value) []graph.Value
	// Combine merges the subresults.
	Combine func(w pe.Ctx, prob graph.Value, subs []graph.Value) graph.Value
}

// DivideAndConquer unfolds a process tree over the PEs: at each level
// up to depth, all but one subproblem are spawned as child processes
// (placed round-robin over the machine) while the first is solved
// locally — Eden's recursively-unfolding dc skeleton. Below the depth
// limit everything is solved sequentially in-process.
func DivideAndConquer(p pe.Ctx, name string, depth int, f DC, prob graph.Value) graph.Value {
	return dcGo(p, name, depth, 1, f, prob)
}

// dcGo carries the placement stride: children at level l are offset by
// stride so subtrees land on disjoint PEs until the machine is covered.
func dcGo(p pe.Ctx, name string, depth, stride int, f DC, prob graph.Value) graph.Value {
	if f.Trivial(prob) {
		return f.Solve(p, prob)
	}
	subs := f.Divide(p, prob)
	results := make([]graph.Value, len(subs))
	if depth <= 0 || len(subs) == 1 {
		for i, s := range subs {
			results[i] = dcGo(p, name, 0, stride, f, s)
		}
		return f.Combine(p, prob, results)
	}
	// Spawn all but the first subproblem remotely.
	ins := make([]pe.Inport, len(subs))
	for i := 1; i < len(subs); i++ {
		i := i
		dest := (p.PE() + i*stride) % p.PEs()
		in, out := p.NewChan(p.PE())
		ins[i] = in
		sub := subs[i]
		p.Spawn(dest, fmt.Sprintf("%s-d%d-%d", name, depth, i), func(w pe.Ctx) {
			w.Send(out, dcGo(w, name, depth-1, stride*len(subs), f, sub))
		})
	}
	results[0] = dcGo(p, name, depth-1, stride*len(subs), f, subs[0])
	for i := 1; i < len(subs); i++ {
		results[i] = p.Receive(ins[i])
	}
	return f.Combine(p, prob, results)
}
