package skel

import (
	"sort"
	"testing"

	"parhask/internal/eden"
	"parhask/internal/graph"
	"parhask/internal/pe"
)

func runE(t *testing.T, cfg eden.Config, main func(pe.Ctx) graph.Value) *eden.Result {
	t.Helper()
	res, err := eden.Run(cfg, main)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParMapSquares(t *testing.T) {
	res := runE(t, eden.NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, 10)
		for i := range inputs {
			inputs[i] = i
		}
		out := ParMap(p, "sq", func(w pe.Ctx, in graph.Value) graph.Value {
			w.Burn(100_000)
			n := in.(int)
			return n * n
		}, inputs)
		sum := 0
		for i, v := range out {
			if v != i*i {
				t.Errorf("out[%d] = %v, want %d", i, v, i*i)
			}
			sum += v.(int)
		}
		return sum
	})
	want := 0
	for i := 0; i < 10; i++ {
		want += i * i
	}
	if res.Value != want {
		t.Fatalf("sum = %v, want %d", res.Value, want)
	}
	if res.Stats.Processes != 10 {
		t.Fatalf("processes = %d, want 10", res.Stats.Processes)
	}
}

func TestParMapParallelSpeedup(t *testing.T) {
	main := func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, 8)
		for i := range inputs {
			inputs[i] = i
		}
		ParMap(p, "w", func(w pe.Ctx, in graph.Value) graph.Value {
			w.Alloc(128 * 1024)
			w.Burn(10_000_000)
			return in
		}, inputs)
		return true
	}
	r1 := runE(t, eden.NewConfig(1, 1), main)
	r8 := runE(t, eden.NewConfig(8, 8), main)
	if sp := float64(r1.Elapsed) / float64(r8.Elapsed); sp < 4 {
		t.Fatalf("speedup = %.2f, want >= 4", sp)
	}
}

func TestParReduceSum(t *testing.T) {
	res := runE(t, eden.NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		xs := make([]graph.Value, 100)
		for i := range xs {
			xs[i] = i + 1
		}
		return ParReduce(p, "sum", func(w pe.Ctx, acc, x graph.Value) graph.Value {
			w.Burn(10_000)
			return acc.(int) + x.(int)
		}, 0, xs)
	})
	if res.Value != 5050 {
		t.Fatalf("sum = %v, want 5050", res.Value)
	}
}

func TestParReduceFewerElementsThanPEs(t *testing.T) {
	res := runE(t, eden.NewConfig(8, 8), func(p pe.Ctx) graph.Value {
		return ParReduce(p, "sum", func(w pe.Ctx, acc, x graph.Value) graph.Value {
			return acc.(int) + x.(int)
		}, 0, []graph.Value{1, 2, 3})
	})
	if res.Value != 6 {
		t.Fatalf("sum = %v, want 6", res.Value)
	}
}

func TestParMapReduceGroupsByKey(t *testing.T) {
	res := runE(t, eden.NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, 30)
		for i := range inputs {
			inputs[i] = i
		}
		kvs := ParMapReduce(p, "mr",
			func(w pe.Ctx, in graph.Value) []KV {
				w.Burn(20_000)
				return []KV{{Key: in.(int) % 3, Val: 1}}
			},
			func(w pe.Ctx, key graph.Value, vals []graph.Value) graph.Value {
				s := 0
				for _, v := range vals {
					s += v.(int)
				}
				return s
			}, inputs)
		counts := map[int]int{}
		for _, kv := range kvs {
			counts[kv.Key.(int)] = kv.Val.(int)
		}
		return counts[0]*100 + counts[1]*10 + counts[2]
	})
	// 30 inputs: keys 0,1,2 each appear 10 times.
	if res.Value != 10*100+10*10+10 {
		t.Fatalf("counts encoded = %v, want 1110", res.Value)
	}
}

func TestParMapReduceDeterministicKeyOrder(t *testing.T) {
	main := func(p pe.Ctx) graph.Value {
		inputs := []graph.Value{5, 3, 5, 1, 3}
		kvs := ParMapReduce(p, "mr",
			func(w pe.Ctx, in graph.Value) []KV {
				return []KV{{Key: in, Val: 1}}
			},
			func(w pe.Ctx, key graph.Value, vals []graph.Value) graph.Value {
				return len(vals)
			}, inputs)
		keys := make([]int, len(kvs))
		for i, kv := range kvs {
			keys[i] = kv.Key.(int)
		}
		return keys
	}
	a := runE(t, eden.NewConfig(3, 3), main)
	b := runE(t, eden.NewConfig(3, 3), main)
	ka, kb := a.Value.([]int), b.Value.([]int)
	if len(ka) != 3 || len(kb) != 3 {
		t.Fatalf("keys = %v / %v, want 3 distinct", ka, kb)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key order nondeterministic: %v vs %v", ka, kb)
		}
	}
}

func TestMasterWorkerStaticTasks(t *testing.T) {
	res := runE(t, eden.NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		tasks := make([]graph.Value, 20)
		for i := range tasks {
			tasks[i] = i
		}
		out := MasterWorker(p, "mw", 3, 2, func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
			n := task.(int)
			w.Burn(int64(50_000 + 20_000*(n%5))) // irregular sizes
			return nil, n * 2
		}, tasks)
		got := make([]int, len(out))
		for i, v := range out {
			got[i] = v.(int)
		}
		sort.Ints(got)
		return got
	})
	got := res.Value.([]int)
	if len(got) != 20 {
		t.Fatalf("got %d results, want 20", len(got))
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("sorted[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

func TestMasterWorkerDynamicTaskTree(t *testing.T) {
	// Each task n > 0 spawns two subtasks n-1; counting all results
	// verifies dynamic task creation and clean termination.
	res := runE(t, eden.NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		out := MasterWorker(p, "tree", 4, 2, func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
			n := task.(int)
			w.Burn(30_000)
			if n == 0 {
				return nil, 1
			}
			return []graph.Value{n - 1, n - 1}, 0
		}, []graph.Value{4})
		total, leaves := 0, 0
		for _, v := range out {
			total++
			leaves += v.(int)
		}
		return []int{total, leaves}
	})
	got := res.Value.([]int)
	// A binary tree of depth 4: 2^5-1 = 31 tasks, 16 leaves.
	if got[0] != 31 || got[1] != 16 {
		t.Fatalf("tasks=%d leaves=%d, want 31/16", got[0], got[1])
	}
}

func TestMasterWorkerEmptyInitial(t *testing.T) {
	res := runE(t, eden.NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		out := MasterWorker(p, "mt", 2, 1, func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
			return nil, task
		}, nil)
		return len(out)
	})
	if res.Value != 0 {
		t.Fatalf("results = %v, want 0", res.Value)
	}
}

func TestRingAllToAll(t *testing.T) {
	// Each node injects its input and forwards everything it receives
	// n-1 hops; every node must see every input exactly once.
	const n = 5
	res := runE(t, eden.NewConfig(n+1, n+1), func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, n)
		for i := range inputs {
			inputs[i] = 10 + i
		}
		outs := Ring(p, "ring", n, func(w pe.Ctx, idx int, input graph.Value,
			fromPred pe.StreamIn, toSucc pe.StreamOut) graph.Value {
			sum := input.(int)
			w.StreamSend(toSucc, input)
			for k := 0; k < n-1; k++ {
				v, ok := w.StreamRecv(fromPred)
				if !ok {
					t.Errorf("node %d: stream closed early", idx)
					return -1
				}
				sum += v.(int)
				if k < n-2 {
					w.StreamSend(toSucc, v)
				}
			}
			w.StreamClose(toSucc)
			// Drain the final close from the predecessor.
			if _, ok := w.StreamRecv(fromPred); ok {
				t.Errorf("node %d: expected close", idx)
			}
			return sum
		}, inputs)
		for i, v := range outs {
			if v != 10+11+12+13+14 {
				t.Errorf("node %d sum = %v", i, v)
			}
		}
		return len(outs)
	})
	if res.Value != n {
		t.Fatalf("outs = %v", res.Value)
	}
}

func TestTorusNeighbourWiring(t *testing.T) {
	// Every node sends its coordinates left and up once; it must receive
	// its right neighbour's coordinates on fromRight and its below
	// neighbour's on fromBelow.
	const q = 3
	res := runE(t, eden.NewConfig(q*q+1, 8), func(p pe.Ctx) graph.Value {
		inputs := make([][]graph.Value, q)
		for i := range inputs {
			inputs[i] = make([]graph.Value, q)
			for j := range inputs[i] {
				inputs[i][j] = []int{i, j}
			}
		}
		outs := Torus(p, "torus", q, func(w pe.Ctx, i, j int, input graph.Value,
			fromRight pe.StreamIn, toLeft pe.StreamOut,
			fromBelow pe.StreamIn, toUp pe.StreamOut) graph.Value {
			w.StreamSend(toLeft, input)
			w.StreamSend(toUp, input)
			w.StreamClose(toLeft)
			w.StreamClose(toUp)
			r, _ := w.StreamRecv(fromRight)
			b, _ := w.StreamRecv(fromBelow)
			// Drain closes.
			w.StreamRecv(fromRight)
			w.StreamRecv(fromBelow)
			rr := r.([]int)
			bb := b.([]int)
			okR := rr[0] == i && rr[1] == (j+1)%q
			okB := bb[0] == (i+1)%q && bb[1] == j
			return okR && okB
		}, inputs)
		for i := range outs {
			for j := range outs[i] {
				if outs[i][j] != true {
					t.Errorf("node (%d,%d) wired wrongly", i, j)
				}
			}
		}
		return true
	})
	if res.Value != true {
		t.Fatal("torus wiring test failed")
	}
}

func TestRingDeterminism(t *testing.T) {
	main := func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, 4)
		for i := range inputs {
			inputs[i] = i
		}
		Ring(p, "r", 4, func(w pe.Ctx, idx int, input graph.Value,
			in pe.StreamIn, out pe.StreamOut) graph.Value {
			w.StreamSend(out, input)
			w.StreamClose(out)
			v, _ := w.StreamRecv(in)
			w.StreamRecv(in)
			return v
		}, inputs)
		return true
	}
	a := runE(t, eden.NewConfig(5, 4), main)
	b := runE(t, eden.NewConfig(5, 4), main)
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Fatalf("nondeterministic ring run: %d vs %d", a.Elapsed, b.Elapsed)
	}
}
