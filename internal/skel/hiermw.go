package skel

import (
	"fmt"

	"parhask/internal/graph"
	"parhask/internal/pe"
)

// HierMasterWorker is the hierarchical master-worker skeleton of the
// paper's reference [19] (Berthold, Dieterle, Loogen, Priebe, PADL'08):
// the task pool is partitioned over a layer of submaster processes,
// each of which runs its own dynamic farm over a disjoint group of
// worker PEs. The hierarchy removes the single-master bottleneck that
// flat farms develop at scale — the kind of multi-level coordination
// the paper's §VI-B anticipates for large machines.
//
// This is the static-top variant: the initial tasks are unshuffled over
// the submasters up front; load balancing is dynamic *within* each
// group (including tasks created at runtime, which stay in their
// group's farm). Results are returned in completion order per group,
// groups concatenated.
func HierMasterWorker(p pe.Ctx, name string, submasters, workersPer, prefetch, batch int,
	work TaskFunc, initial []graph.Value) []graph.Value {
	if submasters <= 0 || workersPer <= 0 {
		panic("skel: HierMasterWorker needs positive submaster and worker counts")
	}
	_ = batch // the static-top variant has no top-level batching

	// Carve the machine: submaster s heads a contiguous group of
	// (1 + workersPer) PEs; its workers follow it.
	groupSize := 1 + workersPer
	shares := unshuffle(submasters, initial)

	resIns := make([]pe.StreamIn, 0, submasters)
	for s := 0; s < submasters && s < len(shares); s++ {
		s := s
		base := placement(p, s*groupSize)
		workerPEs := make([]int, workersPer)
		for w := 0; w < workersPer; w++ {
			workerPEs[w] = (base + 1 + w) % p.PEs()
		}
		taskIn, taskOut := p.NewStream(base)
		resIn, resOut := p.NewStream(p.PE())
		resIns = append(resIns, resIn)
		p.Spawn(base, fmt.Sprintf("%s-sub%d", name, s), func(sm pe.Ctx) {
			tasks := sm.RecvAll(taskIn)
			rs := MasterWorkerAt(sm, fmt.Sprintf("%s-sub%d", name, s), workerPEs, prefetch, work, tasks)
			for _, r := range rs {
				sm.StreamSend(resOut, r)
			}
			sm.StreamClose(resOut)
		})
		p.SendAll(taskOut, shares[s])
	}

	var results []graph.Value
	for _, in := range resIns {
		results = append(results, p.RecvAll(in)...)
	}
	return results
}
