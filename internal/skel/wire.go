package skel

import (
	"parhask/internal/eden/wire"
	"parhask/internal/graph"
)

// Wire codecs for the skeleton message types (tag block 40..47; see
// internal/eden/wire). Registered at init so any binary linking the
// skeletons can ship their packets across processes, with the encoded
// length equal to each type's PackedSize by construction.
func init() {
	wire.Register(40, KV{},
		func(e *wire.Enc, v graph.Value) error {
			kv := v.(KV)
			if err := e.Value(kv.Key); err != nil {
				return err
			}
			return e.Value(kv.Val)
		},
		func(d *wire.Dec) (graph.Value, error) {
			key, err := d.Value()
			if err != nil {
				return nil, err
			}
			val, err := d.Value()
			if err != nil {
				return nil, err
			}
			return KV{Key: key, Val: val}, nil
		})

	wire.Register(41, mwResult{},
		func(e *wire.Enc, v graph.Value) error {
			m := v.(mwResult)
			e.U64(uint64(len(m.NewTasks)))
			for _, t := range m.NewTasks {
				if err := e.Value(t); err != nil {
					return err
				}
			}
			return e.Value(m.Result)
		},
		func(d *wire.Dec) (graph.Value, error) {
			n, err := d.U64()
			if err != nil {
				return nil, err
			}
			var tasks []graph.Value
			for i := uint64(0); i < n; i++ {
				t, err := d.Value()
				if err != nil {
					return nil, err
				}
				tasks = append(tasks, t)
			}
			res, err := d.Value()
			if err != nil {
				return nil, err
			}
			return mwResult{NewTasks: tasks, Result: res}, nil
		})
}
