// Package skel provides Eden's algorithmic skeletons (§II-A): parMap,
// parReduce, parMapReduce (Google-MapReduce style), masterWorker (a
// dynamic bag-of-tasks farm), and the topology skeletons ring and torus.
//
// Each skeleton is an ordinary higher-order function over Eden process
// abstractions: callers supply sequential worker functions; the skeleton
// hides process instantiation, channel wiring and placement — but, as
// the paper stresses, remains plain library code that systems
// programmers can customise.
package skel

import (
	"fmt"

	"parhask/internal/eden"
	"parhask/internal/graph"
	"parhask/internal/pe"
)

// WorkerFunc maps one input value to one output value inside a worker
// process.
type WorkerFunc func(w pe.Ctx, in graph.Value) graph.Value

// placement returns the PE for the i-th worker: round-robin starting
// after the caller's PE, as Eden's instantiation does by default.
func placement(p pe.Ctx, i int) int {
	return (p.PE() + 1 + i) % p.PEs()
}

// ParMap applies f to every input in its own Eden process (one process
// per input, placed round-robin over the PEs) and returns the results in
// input order. Inputs are shipped to the workers over one-value
// channels; results come back the same way.
func ParMap(p pe.Ctx, name string, f WorkerFunc, inputs []graph.Value) []graph.Value {
	n := len(inputs)
	resIns := make([]pe.Inport, n)
	for i := 0; i < n; i++ {
		dest := placement(p, i)
		argIn, argOut := p.NewChan(dest)
		resIn, resOut := p.NewChan(p.PE())
		resIns[i] = resIn
		p.Spawn(dest, fmt.Sprintf("%s-%d", name, i), func(w pe.Ctx) {
			w.Send(resOut, f(w, w.Receive(argIn)))
		})
		p.Send(argOut, inputs[i])
	}
	out := make([]graph.Value, n)
	for i, in := range resIns {
		out[i] = p.Receive(in)
	}
	return out
}

// FoldFunc combines an accumulator with one value.
type FoldFunc func(w pe.Ctx, acc, x graph.Value) graph.Value

// ParReduce folds a list in parallel: the list is split into one chunk
// per PE, each chunk is folded in its own process (foldl' f ntr), and
// the partial results are folded again by the caller — the Eden
// parReduce of §II-A. Requires f to be associative-compatible with this
// regrouping, as in the paper.
func ParReduce(p pe.Ctx, name string, f FoldFunc, ntr graph.Value, xs []graph.Value) graph.Value {
	chunks := splitIntoN(p.PEs(), xs)
	partIns := make([]pe.Inport, 0, len(chunks))
	for i, chunk := range chunks {
		dest := placement(p, i)
		argIn, argOut := p.NewStream(dest)
		resIn, resOut := p.NewChan(p.PE())
		partIns = append(partIns, resIn)
		p.Spawn(dest, fmt.Sprintf("%s-%d", name, i), func(w pe.Ctx) {
			acc := ntr
			for {
				x, ok := w.StreamRecv(argIn)
				if !ok {
					break
				}
				acc = f(w, acc, x)
			}
			w.Send(resOut, acc)
		})
		p.SendAll(argOut, chunk)
	}
	acc := ntr
	for _, in := range partIns {
		acc = f(p, acc, p.Receive(in))
	}
	return acc
}

// KV is one key-value pair produced by a map function.
type KV struct {
	Key graph.Value
	Val graph.Value
}

// PackedSize implements eden.Sized: an 8-byte wire header plus the two
// nested values at their own packed sizes.
func (kv KV) PackedSize() int64 {
	return 8 + eden.SizeOf(kv.Key) + eden.SizeOf(kv.Val)
}

// MapFunc expands one input into key-value pairs.
type MapFunc func(w pe.Ctx, in graph.Value) []KV

// ReduceFunc combines all values collected for one key.
type ReduceFunc func(w pe.Ctx, key graph.Value, vals []graph.Value) graph.Value

// ParMapReduce is the Google-style map-reduce skeleton of §II-A: a
// parallel map producing key-value pairs from every input, followed by a
// per-key reduction. Workers pre-reduce locally (combiner) so only one
// pair per key per worker crosses the network; the caller performs the
// final reduction. Results are returned in first-appearance key order
// (deterministically).
func ParMapReduce(p pe.Ctx, name string, mapf MapFunc, reducef ReduceFunc, inputs []graph.Value) []KV {
	shares := unshuffle(p.PEs(), inputs)
	resIns := make([]pe.StreamIn, 0, len(shares))
	for i, share := range shares {
		dest := placement(p, i)
		argIn, argOut := p.NewStream(dest)
		resIn, resOut := p.NewStream(p.PE())
		resIns = append(resIns, resIn)
		p.Spawn(dest, fmt.Sprintf("%s-%d", name, i), func(w pe.Ctx) {
			g := newGrouper()
			for {
				x, ok := w.StreamRecv(argIn)
				if !ok {
					break
				}
				for _, kv := range mapf(w, x) {
					g.add(kv.Key, kv.Val)
				}
			}
			for _, k := range g.keys {
				w.StreamSend(resOut, KV{Key: k, Val: reducef(w, k, g.vals[k])})
			}
			w.StreamClose(resOut)
		})
		p.SendAll(argOut, share)
	}
	final := newGrouper()
	for _, in := range resIns {
		for {
			v, ok := p.StreamRecv(in)
			if !ok {
				break
			}
			kv := v.(KV)
			final.add(kv.Key, kv.Val)
		}
	}
	out := make([]KV, 0, len(final.keys))
	for _, k := range final.keys {
		out = append(out, KV{Key: k, Val: reducef(p, k, final.vals[k])})
	}
	return out
}

// grouper groups values by key preserving first-appearance key order
// (map iteration order would be nondeterministic).
type grouper struct {
	keys []graph.Value
	vals map[graph.Value][]graph.Value
}

func newGrouper() *grouper {
	return &grouper{vals: make(map[graph.Value][]graph.Value)}
}

func (g *grouper) add(k, v graph.Value) {
	if _, ok := g.vals[k]; !ok {
		g.keys = append(g.keys, k)
	}
	g.vals[k] = append(g.vals[k], v)
}

// unshuffle distributes xs round-robin over n shares (Eden's takeEach /
// unshuffle distribution, which balances inputs whose cost grows along
// the list); empty shares are dropped.
func unshuffle(n int, xs []graph.Value) [][]graph.Value {
	if n <= 0 {
		n = 1
	}
	shares := make([][]graph.Value, n)
	for i, x := range xs {
		shares[i%n] = append(shares[i%n], x)
	}
	out := shares[:0]
	for _, s := range shares {
		if len(s) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// splitIntoN partitions xs into n near-equal contiguous chunks (empty
// chunks are dropped).
func splitIntoN(n int, xs []graph.Value) [][]graph.Value {
	if n <= 0 {
		n = 1
	}
	var out [][]graph.Value
	for i := 0; i < n; i++ {
		lo := len(xs) * i / n
		hi := len(xs) * (i + 1) / n
		if hi > lo {
			out = append(out, xs[lo:hi])
		}
	}
	return out
}
