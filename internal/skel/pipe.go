package skel

import (
	"fmt"

	"parhask/internal/graph"
	"parhask/internal/pe"
)

// StageFunc transforms one stream element inside a pipeline stage.
type StageFunc func(w pe.Ctx, in graph.Value) graph.Value

// Pipeline spawns one process per stage, connected by streams: inputs
// flow master → stage 0 → … → stage n-1 → master. With k inputs and s
// stages the elements overlap in the classic pipeline fashion, so the
// makespan approaches k·max-stage-cost rather than k·Σ stage costs.
func Pipeline(p pe.Ctx, name string, stages []StageFunc, inputs []graph.Value) []graph.Value {
	if len(stages) == 0 {
		return append([]graph.Value(nil), inputs...)
	}
	n := len(stages)
	pes := make([]int, n)
	for i := range pes {
		pes[i] = placement(p, i)
	}
	// Stream i feeds stage i; the final stream returns to the master.
	ins := make([]pe.StreamIn, n+1)
	outs := make([]pe.StreamOut, n+1)
	ins[0], outs[0] = p.NewStream(pes[0])
	for i := 1; i < n; i++ {
		ins[i], outs[i] = p.NewStream(pes[i])
	}
	ins[n], outs[n] = p.NewStream(p.PE())

	for i := 0; i < n; i++ {
		i := i
		p.Spawn(pes[i], fmt.Sprintf("%s-s%d", name, i), func(w pe.Ctx) {
			for {
				v, ok := w.StreamRecv(ins[i])
				if !ok {
					break
				}
				w.StreamSend(outs[i+1], stages[i](w, v))
			}
			w.StreamClose(outs[i+1])
		})
	}

	// Feed the pipeline from a separate local thread so the master can
	// drain results concurrently (otherwise a long input list would
	// deadlock on the bounded virtual-time interleaving).
	p.ForkLocal(name+"-feed", func(f pe.Ctx) {
		f.SendAll(outs[0], inputs)
	})
	out := p.RecvAll(ins[n])
	return out
}
