package deque

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLIFOPop(t *testing.T) {
	d := New[int]()
	vals := []int{1, 2, 3, 4, 5}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := len(vals) - 1; i >= 0; i-- {
		x, ok := d.PopBottom()
		if !ok || *x != vals[i] {
			t.Fatalf("pop %d: got %v ok=%v, want %d", i, x, ok, vals[i])
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
}

func TestFIFOSteal(t *testing.T) {
	d := New[int]()
	vals := []int{10, 20, 30}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := 0; i < len(vals); i++ {
		x, ok := d.Steal()
		if !ok || *x != vals[i] {
			t.Fatalf("steal %d: got %v ok=%v, want %d", i, x, ok, vals[i])
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal from empty deque succeeded")
	}
}

func TestMixedPopAndSteal(t *testing.T) {
	d := New[int]()
	vals := make([]int, 6)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	// Owner takes newest, thief takes oldest.
	if x, ok := d.PopBottom(); !ok || *x != 5 {
		t.Fatalf("pop got %v", x)
	}
	if x, ok := d.Steal(); !ok || *x != 0 {
		t.Fatalf("steal got %v", x)
	}
	if d.Size() != 4 {
		t.Fatalf("size = %d, want 4", d.Size())
	}
}

func TestGrowth(t *testing.T) {
	d := New[int]()
	n := 10_000 // far beyond initial capacity
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	if d.Size() != n {
		t.Fatalf("size = %d, want %d", d.Size(), n)
	}
	for i := n - 1; i >= 0; i-- {
		x, ok := d.PopBottom()
		if !ok || *x != i {
			t.Fatalf("pop: got %v ok=%v, want %d", x, ok, i)
		}
	}
}

func TestInterleavedGrowthKeepsElements(t *testing.T) {
	// Push/pop around the growth boundary with a nonzero top (steals
	// happened), to exercise index wrapping in grow.
	d := New[int]()
	vals := make([]int, 300)
	for i := 0; i < 100; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	for i := 0; i < 50; i++ {
		if _, ok := d.Steal(); !ok {
			t.Fatal("steal failed")
		}
	}
	for i := 100; i < 300; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	seen := map[int]bool{}
	for {
		x, ok := d.PopBottom()
		if !ok {
			break
		}
		if seen[*x] {
			t.Fatalf("duplicate element %d", *x)
		}
		seen[*x] = true
	}
	if len(seen) != 250 {
		t.Fatalf("got %d elements, want 250", len(seen))
	}
	for i := 50; i < 300; i++ {
		if !seen[i] {
			t.Fatalf("missing element %d", i)
		}
	}
}

func TestSequentialSemanticsProperty(t *testing.T) {
	// Property: a deque driven by an arbitrary sequence of operations
	// behaves like a reference double-ended queue.
	type model struct{ items []int }
	f := func(ops []uint8, seedVals []int16) bool {
		d := New[int]()
		m := model{}
		pool := make([]int, 0, len(ops))
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				pool = append(pool, next)
				d.PushBottom(&pool[len(pool)-1])
				m.items = append(m.items, next)
				next++
			case 1: // pop bottom
				x, ok := d.PopBottom()
				if len(m.items) == 0 {
					if ok {
						return false
					}
				} else {
					want := m.items[len(m.items)-1]
					m.items = m.items[:len(m.items)-1]
					if !ok || *x != want {
						return false
					}
				}
			case 2: // steal (top)
				x, ok := d.Steal()
				if len(m.items) == 0 {
					if ok {
						return false
					}
				} else {
					want := m.items[0]
					m.items = m.items[1:]
					if !ok || *x != want {
						return false
					}
				}
			}
		}
		return d.Size() == len(m.items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStealersNoLossNoDup(t *testing.T) {
	// Real-concurrency stress: one owner pushes and pops, several
	// thieves steal. Every element must be consumed exactly once.
	const n = 50_000
	const thieves = 4
	d := New[int]()
	vals := make([]int, n)

	var mu sync.Mutex
	consumed := make(map[int]int, n)
	record := func(x *int) {
		mu.Lock()
		consumed[*x]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if x, ok := d.Steal(); ok {
					record(x)
					continue
				}
				select {
				case <-stop:
					// Drain anything left after the owner finished.
					for {
						x, ok := d.Steal()
						if !ok {
							return
						}
						record(x)
					}
				default:
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
		if i%3 == 0 {
			if x, ok := d.PopBottom(); ok {
				record(x)
			}
		}
	}
	for {
		x, ok := d.PopBottom()
		if !ok {
			break
		}
		record(x)
	}
	close(stop)
	wg.Wait()

	if len(consumed) != n {
		t.Fatalf("consumed %d distinct elements, want %d", len(consumed), n)
	}
	for v, c := range consumed {
		if c != 1 {
			t.Fatalf("element %d consumed %d times", v, c)
		}
	}
}

func TestConcurrentStealersAcrossGrowth(t *testing.T) {
	// Stress the grow path under real contention: the owner pushes
	// 100_000 elements in bursts large enough to outrun the thieves, so
	// the circular array is reallocated several times *while* >= 4
	// thieves are CASing the top. Every element must still be consumed
	// exactly once, and the array must actually have grown.
	const n = 100_000
	const thieves = 4
	const burst = 1_000
	d := New[int]()
	vals := make([]int, n)

	var mu sync.Mutex
	consumed := make(map[int]int, n)
	record := func(x *int) {
		mu.Lock()
		consumed[*x]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if x, ok := d.Steal(); ok {
					record(x)
					continue
				}
				select {
				case <-stop:
					for {
						x, ok := d.Steal()
						if !ok {
							return
						}
						record(x)
					}
				default:
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
		// Between bursts the owner pops a little, exercising the
		// PopBottom/Steal race at both small and large sizes.
		if i%burst == burst-1 {
			for j := 0; j < burst/4; j++ {
				if x, ok := d.PopBottom(); ok {
					record(x)
				}
			}
		}
	}
	for {
		x, ok := d.PopBottom()
		if !ok {
			break
		}
		record(x)
	}
	close(stop)
	wg.Wait()

	if got := d.array.Load().size(); got <= 1<<initialLogSize {
		t.Fatalf("array size = %d; the grow path never ran (want > %d)", got, 1<<initialLogSize)
	}
	if len(consumed) != n {
		t.Fatalf("consumed %d distinct elements, want %d", len(consumed), n)
	}
	for v, c := range consumed {
		if c != 1 {
			t.Fatalf("element %d consumed %d times", v, c)
		}
	}
}

func TestEmptyAndSize(t *testing.T) {
	d := New[int]()
	if !d.Empty() || d.Size() != 0 {
		t.Fatal("new deque not empty")
	}
	v := 7
	d.PushBottom(&v)
	if d.Empty() || d.Size() != 1 {
		t.Fatal("deque with one element reports empty")
	}
}
