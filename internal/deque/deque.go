// Package deque implements the Chase–Lev lock-free work-stealing deque
// (D. Chase and Y. Lev, "Dynamic circular work-stealing deque", SPAA 2005
// — reference [31] of the paper). It is the data structure behind the
// paper's "work-stealing for sparks" optimisation: the owning capability
// pushes and pops sparks at the bottom without synchronisation in the
// common case, while idle capabilities steal from the top with a single
// CAS and no hand-shaking with the owner.
//
// The implementation uses real atomics and is safe under genuine
// concurrency (the tests exercise it with parallel stealers), even though
// the simulator only ever runs one task at a time.
package deque

import (
	"sync/atomic"
)

// Deque is a dynamically-sized lock-free work-stealing deque of *T.
// PushBottom and PopBottom may be called only by the owner; Steal may be
// called by any number of concurrent thieves.
type Deque[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	array  atomic.Pointer[circArray[T]]
}

// circArray is a circular buffer with capacity 2^logSize.
type circArray[T any] struct {
	logSize uint
	buf     []atomic.Pointer[T]
}

func newCircArray[T any](logSize uint) *circArray[T] {
	return &circArray[T]{logSize: logSize, buf: make([]atomic.Pointer[T], 1<<logSize)}
}

func (a *circArray[T]) size() int64       { return int64(1) << a.logSize }
func (a *circArray[T]) get(i int64) *T    { return a.buf[i&(a.size()-1)].Load() }
func (a *circArray[T]) put(i int64, v *T) { a.buf[i&(a.size()-1)].Store(v) }

func (a *circArray[T]) grow(bottom, top int64) *circArray[T] {
	na := newCircArray[T](a.logSize + 1)
	for i := top; i < bottom; i++ {
		na.put(i, a.get(i))
	}
	return na
}

// initialLogSize gives a starting capacity of 64 slots.
const initialLogSize = 6

// New returns an empty deque.
func New[T any]() *Deque[T] {
	d := &Deque[T]{}
	d.array.Store(newCircArray[T](initialLogSize))
	return d
}

// PushBottom adds x at the bottom. Owner-only.
func (d *Deque[T]) PushBottom(x *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t > a.size()-1 {
		a = a.grow(b, t)
		d.array.Store(a)
	}
	a.put(b, x)
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the most recently pushed element.
// Owner-only. ok is false when the deque is empty (or the last element
// was lost to a concurrent thief).
func (d *Deque[T]) PopBottom() (x *T, ok bool) {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	size := b - t
	if size < 0 {
		d.bottom.Store(t)
		return nil, false
	}
	x = a.get(b)
	if size > 0 {
		return x, true
	}
	// Last element: race with thieves via CAS on top.
	if !d.top.CompareAndSwap(t, t+1) {
		x, ok = nil, false
	} else {
		ok = true
	}
	d.bottom.Store(t + 1)
	return x, ok
}

// Steal removes and returns the oldest element. Safe from any goroutine.
// ok is false when the deque is empty or the steal lost a race (callers
// treat both as "try elsewhere").
func (d *Deque[T]) Steal() (x *T, ok bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if b-t <= 0 {
		return nil, false
	}
	a := d.array.Load()
	x = a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	return x, true
}

// Size returns a point-in-time estimate of the number of elements.
func (d *Deque[T]) Size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the deque appears empty.
func (d *Deque[T]) Empty() bool { return d.Size() == 0 }
