// Package core packages the paper's primary contribution as a library
// operation: running one and the same GpH program under every runtime
// organisation — the shared heap in each of the paper's four
// optimisation stages, the §VI semi-distributed heap, the parallel
// collector, and the distributed-memory GUM implementation — and
// reporting the results side by side. This is the comparison the paper
// performs by hand across Figs. 1–5, offered as a reusable primitive
// (Eden is compared at the experiments layer, since its programs are
// written against skeletons rather than par).
package core

import (
	"fmt"

	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/gum"
	"parhask/internal/rts"
	"parhask/internal/sim"
	"parhask/internal/trace"
)

// Program is a portable GpH computation (par + forcing over thunks).
type Program = func(*rts.Ctx) graph.Value

// Variant identifies one runtime organisation under comparison.
type Variant string

// The comparable organisations.
const (
	PlainGHC69   Variant = "gph-plain-ghc69"
	BigAllocArea Variant = "gph-big-alloc-area"
	ImprovedSync Variant = "gph-improved-sync"
	WorkStealing Variant = "gph-work-stealing"
	ParallelGC   Variant = "gph-parallel-gc"
	LocalHeaps   Variant = "gph-local-heaps"
	EagerBH      Variant = "gph-eager-blackholing"
	GUM          Variant = "gum-distributed"
)

// AllVariants lists every organisation in presentation order.
func AllVariants() []Variant {
	return []Variant{
		PlainGHC69, BigAllocArea, ImprovedSync, WorkStealing,
		ParallelGC, LocalHeaps, EagerBH, GUM,
	}
}

// Outcome is one variant's run result.
type Outcome struct {
	Variant Variant
	Elapsed sim.Time
	Value   graph.Value
	Trace   *trace.Log
	// GpH / GUM statistics; exactly one is meaningful per variant.
	GpH *gph.Stats
	GUM *gum.Stats
}

// Compare runs the program under the requested variants on a machine
// with the given core count and returns one outcome per variant, in
// order. It verifies that every variant computed an identical value
// (referential transparency across runtime organisations — the paper's
// implicit correctness baseline) and reports an error otherwise.
func Compare(cores int, program Program, variants ...Variant) ([]Outcome, error) {
	if len(variants) == 0 {
		variants = AllVariants()
	}
	outs := make([]Outcome, 0, len(variants))
	for _, v := range variants {
		o, err := runVariant(cores, program, v)
		if err != nil {
			return nil, fmt.Errorf("core: variant %s: %w", v, err)
		}
		outs = append(outs, o)
	}
	for _, o := range outs[1:] {
		if fmt.Sprint(o.Value) != fmt.Sprint(outs[0].Value) {
			return nil, fmt.Errorf("core: variant %s computed %v where %s computed %v",
				o.Variant, o.Value, outs[0].Variant, outs[0].Value)
		}
	}
	return outs, nil
}

// runVariant executes the program under one organisation.
func runVariant(cores int, program Program, v Variant) (Outcome, error) {
	if v == GUM {
		res, err := gum.Run(gum.NewConfig(cores, cores), program)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Variant: v, Elapsed: res.Elapsed, Value: res.Value,
			Trace: res.Trace, GUM: &res.Stats}, nil
	}
	var cfg gph.Config
	switch v {
	case PlainGHC69:
		cfg = gph.PlainGHC69(cores)
	case BigAllocArea:
		cfg = gph.BigAllocArea(cores)
	case ImprovedSync:
		cfg = gph.ImprovedSync(cores)
	case WorkStealing:
		cfg = gph.WorkStealingConfig(cores)
	case ParallelGC:
		cfg = gph.WorkStealingConfig(cores)
		cfg.ParallelGC = true
	case LocalHeaps:
		cfg = gph.LocalHeapsConfig(cores)
	case EagerBH:
		cfg = gph.WorkStealingConfig(cores)
		cfg.EagerBlackholing = true
	default:
		return Outcome{}, fmt.Errorf("unknown variant %q", v)
	}
	res, err := gph.Run(cfg, program)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Variant: v, Elapsed: res.Elapsed, Value: res.Value,
		Trace: res.Trace, GpH: &res.Stats}, nil
}

// Fastest returns the outcome with the smallest elapsed time.
func Fastest(outs []Outcome) Outcome {
	best := outs[0]
	for _, o := range outs[1:] {
		if o.Elapsed < best.Elapsed {
			best = o
		}
	}
	return best
}

// Spread returns the ratio of the slowest to the fastest elapsed time —
// the quantity behind the paper's "similar performance" verdict.
func Spread(outs []Outcome) float64 {
	fastest, slowest := outs[0].Elapsed, outs[0].Elapsed
	for _, o := range outs[1:] {
		if o.Elapsed < fastest {
			fastest = o.Elapsed
		}
		if o.Elapsed > slowest {
			slowest = o.Elapsed
		}
	}
	return float64(slowest) / float64(fastest)
}
