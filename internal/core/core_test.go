package core

import (
	"testing"

	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/strategies"
)

// program is a small portable GpH computation.
func program(chunks int, burn, alloc int64) Program {
	return func(ctx *rts.Ctx) graph.Value {
		ts := make([]*graph.Thunk, chunks)
		for i := 0; i < chunks; i++ {
			i := i
			ts[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value {
				c.Alloc(alloc)
				c.Burn(burn + int64(i%5)*burn/4)
				return i + 1
			})
		}
		strategies.ParListWHNF(ctx, ts)
		sum := 0
		for _, t := range ts {
			sum += ctx.Force(t).(int)
		}
		return sum
	}
}

func TestCompareAllVariantsAgree(t *testing.T) {
	outs, err := Compare(4, program(24, 400_000, 128*1024))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(AllVariants()) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(AllVariants()))
	}
	want := 24 * 25 / 2
	for _, o := range outs {
		if o.Value != want {
			t.Fatalf("%s computed %v, want %d", o.Variant, o.Value, want)
		}
		if o.Elapsed <= 0 {
			t.Fatalf("%s has no elapsed time", o.Variant)
		}
		if o.Trace == nil {
			t.Fatalf("%s has no trace", o.Variant)
		}
		if (o.Variant == GUM) != (o.GUM != nil) || (o.Variant != GUM) != (o.GpH != nil) {
			t.Fatalf("%s has wrong stats kind", o.Variant)
		}
	}
}

func TestCompareSubsetAndOrder(t *testing.T) {
	outs, err := Compare(2, program(8, 200_000, 32*1024), WorkStealing, PlainGHC69)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Variant != WorkStealing || outs[1].Variant != PlainGHC69 {
		t.Fatalf("order not preserved: %v %v", outs[0].Variant, outs[1].Variant)
	}
}

func TestFastestAndSpread(t *testing.T) {
	outs, err := Compare(8, program(48, 600_000, 256*1024),
		PlainGHC69, WorkStealing, GUM)
	if err != nil {
		t.Fatal(err)
	}
	best := Fastest(outs)
	if best.Variant == PlainGHC69 {
		t.Fatal("plain GHC 6.9 should not win this comparison")
	}
	sp := Spread(outs)
	// Plain GHC 6.9's pushing scheduler is dreadful on fine grains, so
	// the spread can be large; it must still be a sane finite ratio >= 1.
	if sp < 1.0 || sp > 20.0 {
		t.Fatalf("spread = %.2f, out of sane range", sp)
	}
}

func TestCompareUnknownVariant(t *testing.T) {
	if _, err := Compare(2, program(4, 100_000, 8*1024), Variant("nonsense")); err == nil {
		t.Fatal("expected error for unknown variant")
	}
}

func TestCompareDeterministic(t *testing.T) {
	a, err := Compare(4, program(16, 300_000, 64*1024), WorkStealing, GUM)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(4, program(16, 300_000, 64*1024), WorkStealing, GUM)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Elapsed != b[i].Elapsed {
			t.Fatalf("variant %s nondeterministic: %d vs %d", a[i].Variant, a[i].Elapsed, b[i].Elapsed)
		}
	}
}
