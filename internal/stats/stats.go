// Package stats formats experiment results: runtime tables, relative
// speedup series, and simple ASCII speedup charts for the figures.
package stats

import (
	"fmt"
	"strings"
)

// Seconds renders virtual nanoseconds as seconds with paper-style
// precision.
func Seconds(ns int64) string { return fmt.Sprintf("%.2f s", float64(ns)/1e9) }

// Table renders a simple aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Series is one speedup curve: runtime (virtual ns) per core count.
type Series struct {
	Name  string
	Times map[int]int64 // cores -> elapsed
}

// Speedup returns the relative speedup at the given core count: the
// series' own single-core time divided by its time at cores.
func (s *Series) Speedup(cores int) float64 {
	t1, ok1 := s.Times[1]
	tc, okc := s.Times[cores]
	if !ok1 || !okc || tc == 0 {
		return 0
	}
	return float64(t1) / float64(tc)
}

// SpeedupTable renders speedup curves for several series as a table
// with one row per core count.
func SpeedupTable(cores []int, series []*Series) string {
	headers := []string{"cores"}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	var rows [][]string
	for _, c := range cores {
		row := []string{fmt.Sprintf("%d", c)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.2f", s.Speedup(c)))
		}
		rows = append(rows, row)
	}
	return Table(headers, rows)
}

// SpeedupChart renders an ASCII chart: one line per core count, one
// glyph per series placed at its speedup value.
func SpeedupChart(cores []int, series []*Series, width int) string {
	if width < 20 {
		width = 20
	}
	maxSp := 1.0
	for _, s := range series {
		for _, c := range cores {
			if sp := s.Speedup(c); sp > maxSp {
				maxSp = sp
			}
		}
	}
	glyphs := []byte("abcdexyzw")
	var b strings.Builder
	fmt.Fprintf(&b, "speedup 0%sup to %.1f\n", strings.Repeat(" ", width-14), maxSp)
	for _, c := range cores {
		lane := make([]byte, width+1)
		for i := range lane {
			lane[i] = ' '
		}
		for si, s := range series {
			sp := s.Speedup(c)
			pos := int(sp / maxSp * float64(width-1))
			if pos < 0 {
				pos = 0
			}
			if pos >= len(lane) {
				pos = len(lane) - 1
			}
			g := glyphs[si%len(glyphs)]
			if lane[pos] != ' ' {
				g = '*' // collision
			}
			lane[pos] = g
		}
		fmt.Fprintf(&b, "%3d cores |%s|\n", c, strings.TrimRight(string(lane), " "))
	}
	b.WriteString("legend: ")
	for si, s := range series {
		if si > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c=%s", glyphs[si%len(glyphs)], s.Name)
	}
	b.WriteString(" (*=overlap)\n")
	return b.String()
}
