package stats

import (
	"strings"
	"testing"
)

func TestSeconds(t *testing.T) {
	if got := Seconds(2_750_000_000); got != "2.75 s" {
		t.Fatalf("Seconds = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All rows equal width (trailing spaces trimmed per cell layout).
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("missing separator:\n%s", out)
	}
	if !strings.Contains(lines[3], "a-much-longer-name") {
		t.Fatalf("missing row:\n%s", out)
	}
}

func TestSeriesSpeedup(t *testing.T) {
	s := &Series{Name: "x", Times: map[int]int64{1: 1000, 4: 250}}
	if sp := s.Speedup(4); sp != 4 {
		t.Fatalf("speedup = %v, want 4", sp)
	}
	if sp := s.Speedup(8); sp != 0 {
		t.Fatalf("missing point should give 0, got %v", sp)
	}
}

func TestSpeedupTableValues(t *testing.T) {
	s := &Series{Name: "v", Times: map[int]int64{1: 800, 2: 400, 8: 100}}
	out := SpeedupTable([]int{1, 2, 8}, []*Series{s})
	if !strings.Contains(out, "8.00") || !strings.Contains(out, "2.00") {
		t.Fatalf("table missing speedups:\n%s", out)
	}
}

func TestSpeedupChartGlyphs(t *testing.T) {
	a := &Series{Name: "A", Times: map[int]int64{1: 1000, 4: 250}}
	b := &Series{Name: "B", Times: map[int]int64{1: 1000, 4: 500}}
	out := SpeedupChart([]int{1, 4}, []*Series{a, b}, 40)
	if !strings.Contains(out, "a=A") || !strings.Contains(out, "b=B") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "4 cores") {
		t.Fatalf("lane missing:\n%s", out)
	}
}

func TestSpeedupChartCollision(t *testing.T) {
	a := &Series{Name: "A", Times: map[int]int64{1: 1000, 4: 250}}
	b := &Series{Name: "B", Times: map[int]int64{1: 1000, 4: 250}}
	out := SpeedupChart([]int{4}, []*Series{a, b}, 40)
	if !strings.Contains(out, "*") {
		t.Fatalf("overlapping series should render *:\n%s", out)
	}
}
