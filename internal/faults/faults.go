// Package faults is the deterministic fault-injection plane shared by
// both native backends (internal/native and internal/nativeeden).
//
// A Plan describes which faults to inject — thread panics at chosen
// spark/process indices, per-edge message drop/delay, and stalled
// ("slow") PEs — and is entirely derived from a seed, so any chaos
// failure replays exactly: parse the spec the failing run printed,
// re-run, observe the same injected fault multiset.
//
// The package also owns the structured failure types the recovery
// machinery returns instead of hanging: InjectedPanic for faults the
// plan asked for, and DeadlockError with per-PE blocked-on diagnostics
// for runs the watchdog had to kill.
//
// Determinism model: every injection decision is a pure hash of
// (seed, fault kind, edge, per-edge sequence number). The decision
// sequence for each spark index, process index and message edge is
// therefore a deterministic function of the seed. Under real
// concurrency two racing messages on the same edge may swap sequence
// numbers between runs — the multiset of injected faults is identical,
// but which of two racing sends is dropped can differ. That is the
// honest limit of replay on a real scheduler; in practice failing
// seeds reproduce because the fault pattern (not the interleaving) is
// what programs are sensitive to.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Fate classifies what the injector decided for one message.
type Fate int

const (
	// Deliver means the message proceeds normally.
	Deliver Fate = iota
	// Drop means the message is silently discarded after packing.
	Drop
	// Delay means the sender sleeps for the returned duration before
	// delivering (sender-side delay preserves per-edge FIFO order).
	Delay
)

// EdgeRule injects drop/delay on messages from PE Src to PE Dst.
// Src or Dst may be Any (-1) to match every PE on that side.
type EdgeRule struct {
	Src       int           // sending PE, or Any
	Dst       int           // receiving PE, or Any
	DropProb  float64       // probability in [0,1] a matching message is dropped
	DelayProb float64       // probability in [0,1] a matching message is delayed
	Delay     time.Duration // sender-side sleep for delayed messages
}

// Any matches every PE on one side of an EdgeRule.
const Any = -1

// Plan is a complete, seed-driven fault schedule.
type Plan struct {
	// Seed drives every probabilistic decision. Two runs of the same
	// program with the same Plan see the same per-edge decision
	// sequences.
	Seed uint64
	// PanicSparks are global spark indices (in spark-execution order
	// per backend counter) whose executing thread panics.
	PanicSparks map[int64]bool
	// PanicProcs are process/thread spawn indices whose body panics on
	// entry.
	PanicProcs map[int64]bool
	// Edges are message drop/delay rules, applied first-match.
	Edges []EdgeRule
	// Stall maps a PE id (or worker id) to an extra sleep injected at
	// each communication point and thread start, simulating a slow PE.
	Stall map[int]time.Duration
	// KillRank maps a cluster worker rank to a delay after which the
	// whole worker *process* exits hard (os.Exit, no cleanup) — the
	// genuinely new fault class multi-process Eden adds over injected
	// panics. Applied by the worker itself after the run starts.
	KillRank map[int]time.Duration
	// SeverRank maps a cluster worker rank to a delay after which the
	// worker severs its coordinator link (closes the connection),
	// simulating a network partition; the orphaned worker then exits.
	SeverRank map[int]time.Duration
	// FlapRank maps a cluster worker rank to a transient link outage:
	// the worker drops its coordinator connection at At, stays dark for
	// Down, then redials. Unlike SeverRank the failure is recoverable —
	// a reconnect-capable cluster should ride it out in place.
	FlapRank map[int]FlapRule
	// WedgeRank maps a cluster worker rank to a delay after which the
	// worker stops servicing its link entirely (no reads, no pongs, no
	// sends) while the process stays alive — the failure mode only a
	// liveness heartbeat can tell apart from a slow worker.
	WedgeRank map[int]time.Duration
	// RankEvery makes the one-shot rank fault classes (kill/sever/flap/
	// wedge) re-fire on every supervised restart attempt instead of only
	// the first. The default (one-shot) is what lets a restart budget
	// recover a run; RankEvery exists to test budget exhaustion.
	RankEvery bool
}

// FlapRule describes one transient link outage for a cluster rank.
type FlapRule struct {
	// At is how long after the run starts the link drops.
	At time.Duration
	// Down is how long the link stays down before the worker redials.
	Down time.Duration
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	return len(p.PanicSparks) == 0 && len(p.PanicProcs) == 0 &&
		len(p.Edges) == 0 && len(p.Stall) == 0 &&
		len(p.KillRank) == 0 && len(p.SeverRank) == 0 &&
		len(p.FlapRank) == 0 && len(p.WedgeRank) == 0
}

// String renders the plan in the -faults spec grammar; Parse(p.String())
// round-trips.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, k := range sortedKeys(p.PanicSparks) {
		parts = append(parts, fmt.Sprintf("panic-spark=%d", k))
	}
	for _, k := range sortedKeys(p.PanicProcs) {
		parts = append(parts, fmt.Sprintf("panic-proc=%d", k))
	}
	for _, e := range p.Edges {
		if e.DropProb > 0 {
			parts = append(parts, fmt.Sprintf("drop=%s%s", formatProb(e.DropProb), formatEdge(e.Src, e.Dst)))
		}
		if e.DelayProb > 0 {
			parts = append(parts, fmt.Sprintf("delay=%s:%s%s", e.Delay, formatProb(e.DelayProb), formatEdge(e.Src, e.Dst)))
		}
	}
	stallIDs := make([]int, 0, len(p.Stall))
	for id := range p.Stall {
		stallIDs = append(stallIDs, id)
	}
	sort.Ints(stallIDs)
	for _, id := range stallIDs {
		parts = append(parts, fmt.Sprintf("stall=%d:%s", id, p.Stall[id]))
	}
	for _, id := range sortedIntKeys(p.KillRank) {
		parts = append(parts, fmt.Sprintf("kill-rank=%d:%s", id, p.KillRank[id]))
	}
	for _, id := range sortedIntKeys(p.SeverRank) {
		parts = append(parts, fmt.Sprintf("sever-rank=%d:%s", id, p.SeverRank[id]))
	}
	flapIDs := make([]int, 0, len(p.FlapRank))
	for id := range p.FlapRank {
		flapIDs = append(flapIDs, id)
	}
	sort.Ints(flapIDs)
	for _, id := range flapIDs {
		r := p.FlapRank[id]
		parts = append(parts, fmt.Sprintf("flap-rank=%d:%s:%s", id, r.At, r.Down))
	}
	for _, id := range sortedIntKeys(p.WedgeRank) {
		parts = append(parts, fmt.Sprintf("wedge-rank=%d:%s", id, p.WedgeRank[id]))
	}
	if p.RankEvery {
		parts = append(parts, "rank-faults=every")
	}
	return strings.Join(parts, ",")
}

func sortedIntKeys(m map[int]time.Duration) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func sortedKeys(m map[int64]bool) []int64 {
	ks := make([]int64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func formatProb(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}

func formatEdge(src, dst int) string {
	if src == Any && dst == Any {
		return ""
	}
	s, d := "*", "*"
	if src != Any {
		s = strconv.Itoa(src)
	}
	if dst != Any {
		d = strconv.Itoa(dst)
	}
	return "@" + s + "-" + d
}

// Parse reads a fault spec in the grammar accepted by the -faults flag:
//
//	seed=42,panic-spark=17,panic-proc=3,drop=0.1@0-2,delay=2ms:0.3,stall=1:5ms
//
// Clauses are comma-separated key=value pairs:
//
//	seed=N            seed for all probabilistic decisions (default 1)
//	panic-spark=K     panic the thread running global spark index K
//	panic-proc=K      panic process/thread spawn index K on entry
//	drop=P[@S-D]      drop matching messages with probability P;
//	                  @S-D restricts to edge S→D, either side may be *
//	delay=DUR:P[@S-D] delay matching messages by DUR with probability P
//	stall=PE:DUR      slow PE/worker id by DUR at each comm point
//	kill-rank=R:DUR   cluster mode: worker process rank R exits hard
//	                  (os.Exit) DUR after its run starts
//	sever-rank=R:DUR  cluster mode: rank R severs its coordinator link
//	                  DUR after its run starts, then exits
//	flap-rank=R:AT:DOWN  cluster mode: rank R drops its link AT after
//	                  the run starts, stays down for DOWN, then redials
//	wedge-rank=R:DUR  cluster mode: rank R stops servicing its link
//	                  (no reads, pongs or sends) DUR after the run
//	                  starts while the process lives on
//	rank-faults=every re-fire the rank fault classes on every
//	                  supervised restart attempt (default: first only)
//
// An empty spec returns a nil Plan (no faults).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			p.Seed = n
		case "panic-spark":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: bad panic-spark index %q", val)
			}
			if p.PanicSparks == nil {
				p.PanicSparks = make(map[int64]bool)
			}
			p.PanicSparks[n] = true
		case "panic-proc":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: bad panic-proc index %q", val)
			}
			if p.PanicProcs == nil {
				p.PanicProcs = make(map[int64]bool)
			}
			p.PanicProcs[n] = true
		case "drop":
			probStr, edge := splitEdge(val)
			prob, err := parseProb(probStr)
			if err != nil {
				return nil, fmt.Errorf("faults: bad drop %q: %v", val, err)
			}
			src, dst, err := parseEdge(edge)
			if err != nil {
				return nil, fmt.Errorf("faults: bad drop edge %q: %v", val, err)
			}
			p.Edges = append(p.Edges, EdgeRule{Src: src, Dst: dst, DropProb: prob})
		case "delay":
			durStr, rest, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faults: delay %q must be DUR:P[@S-D]", val)
			}
			dur, err := time.ParseDuration(durStr)
			if err != nil || dur <= 0 {
				return nil, fmt.Errorf("faults: bad delay duration %q", durStr)
			}
			probStr, edge := splitEdge(rest)
			prob, err := parseProb(probStr)
			if err != nil {
				return nil, fmt.Errorf("faults: bad delay %q: %v", val, err)
			}
			src, dst, err := parseEdge(edge)
			if err != nil {
				return nil, fmt.Errorf("faults: bad delay edge %q: %v", val, err)
			}
			p.Edges = append(p.Edges, EdgeRule{Src: src, Dst: dst, DelayProb: prob, Delay: dur})
		case "stall":
			idStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faults: stall %q must be PE:DUR", val)
			}
			id, err := strconv.Atoi(idStr)
			if err != nil || id < 0 {
				return nil, fmt.Errorf("faults: bad stall PE %q", idStr)
			}
			dur, err := time.ParseDuration(durStr)
			if err != nil || dur <= 0 {
				return nil, fmt.Errorf("faults: bad stall duration %q", durStr)
			}
			if p.Stall == nil {
				p.Stall = make(map[int]time.Duration)
			}
			p.Stall[id] = dur
		case "kill-rank", "sever-rank":
			idStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faults: %s %q must be RANK:DUR", key, val)
			}
			id, err := strconv.Atoi(idStr)
			if err != nil || id < 0 {
				return nil, fmt.Errorf("faults: bad %s rank %q", key, idStr)
			}
			dur, err := time.ParseDuration(durStr)
			if err != nil || dur <= 0 {
				return nil, fmt.Errorf("faults: bad %s duration %q", key, durStr)
			}
			if key == "kill-rank" {
				if p.KillRank == nil {
					p.KillRank = make(map[int]time.Duration)
				}
				p.KillRank[id] = dur
			} else {
				if p.SeverRank == nil {
					p.SeverRank = make(map[int]time.Duration)
				}
				p.SeverRank[id] = dur
			}
		case "wedge-rank":
			idStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faults: wedge-rank %q must be RANK:DUR", val)
			}
			id, err := strconv.Atoi(idStr)
			if err != nil || id < 0 {
				return nil, fmt.Errorf("faults: bad wedge-rank rank %q", idStr)
			}
			dur, err := time.ParseDuration(durStr)
			if err != nil || dur <= 0 {
				return nil, fmt.Errorf("faults: bad wedge-rank duration %q", durStr)
			}
			if p.WedgeRank == nil {
				p.WedgeRank = make(map[int]time.Duration)
			}
			p.WedgeRank[id] = dur
		case "flap-rank":
			fields := strings.Split(val, ":")
			if len(fields) != 3 {
				return nil, fmt.Errorf("faults: flap-rank %q must be RANK:AT:DOWN", val)
			}
			id, err := strconv.Atoi(fields[0])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("faults: bad flap-rank rank %q", fields[0])
			}
			at, err := time.ParseDuration(fields[1])
			if err != nil || at <= 0 {
				return nil, fmt.Errorf("faults: bad flap-rank onset %q", fields[1])
			}
			down, err := time.ParseDuration(fields[2])
			if err != nil || down <= 0 {
				return nil, fmt.Errorf("faults: bad flap-rank outage %q", fields[2])
			}
			if p.FlapRank == nil {
				p.FlapRank = make(map[int]FlapRule)
			}
			p.FlapRank[id] = FlapRule{At: at, Down: down}
		case "rank-faults":
			switch val {
			case "every":
				p.RankEvery = true
			case "once":
				p.RankEvery = false
			default:
				return nil, fmt.Errorf("faults: rank-faults %q must be once or every", val)
			}
		default:
			return nil, fmt.Errorf("faults: unknown clause %q", key)
		}
	}
	return p, nil
}

func splitEdge(s string) (prob, edge string) {
	if i := strings.IndexByte(s, '@'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}

func parseEdge(s string) (src, dst int, err error) {
	if s == "" {
		return Any, Any, nil
	}
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("edge %q must be S-D", s)
	}
	parse := func(t string) (int, error) {
		if t == "*" {
			return Any, nil
		}
		n, err := strconv.Atoi(t)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad PE %q", t)
		}
		return n, nil
	}
	if src, err = parse(a); err != nil {
		return 0, 0, err
	}
	if dst, err = parse(b); err != nil {
		return 0, 0, err
	}
	return src, dst, nil
}

// InjectedPanic is the panic value raised by a fault the plan asked
// for; chaos harnesses match on it to distinguish injected failures
// from genuine bugs.
type InjectedPanic struct {
	Kind  string // "spark" or "proc"
	Index int64  // spark/process index the plan named
	Seed  uint64 // plan seed, for replay
}

func (e *InjectedPanic) Error() string {
	return fmt.Sprintf("faults: injected %s panic at index %d (seed %d)", e.Kind, e.Index, e.Seed)
}

// BlockedThread is one blocked thread's diagnostics inside a
// DeadlockError: what it is waiting on and who should have supplied it.
type BlockedThread struct {
	PE     int    // PE or worker id
	Thread string // thread name, if known
	Reason string // "channel" | "stream" | "local" | "spin"
	Chan   int64  // channel/stream id, or -1
	Peer   int    // PE expected to fill the channel, or -1
}

func (b BlockedThread) String() string {
	s := fmt.Sprintf("PE %d", b.PE)
	if b.Thread != "" {
		s += " " + b.Thread
	}
	s += " blocked on " + b.Reason
	if b.Chan >= 0 {
		s += fmt.Sprintf(" #%d", b.Chan)
	}
	if b.Peer >= 0 {
		s += fmt.Sprintf(" from PE %d", b.Peer)
	}
	return s
}

// DeadlockError is returned by the run watchdog when a computation can
// no longer make progress: every live thread is blocked and no message
// is in flight ("quiescence"), or the configured Deadline elapsed.
type DeadlockError struct {
	Backend string          // "native" | "nativeeden"
	Reason  string          // "quiescence" | "deadline"
	Elapsed time.Duration   // wall time when the watchdog fired
	Blocked []BlockedThread // per-PE blocked-on diagnostics
}

func (e *DeadlockError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: deadlock detected (%s) after %v", e.Backend, e.Reason, e.Elapsed)
	for _, b := range e.Blocked {
		sb.WriteString("; ")
		sb.WriteString(b.String())
	}
	return sb.String()
}

// ProcessDeathError is the structured failure for the fault class only
// a multi-process runtime has: a worker process died or its link was
// severed while the run was in flight. The coordinator raises it when
// a worker connection breaks before the run's results are in, kills
// the remaining workers, and exits cleanly — the distributed analogue
// of the in-process watchdog's DeadlockError.
type ProcessDeathError struct {
	// Rank is the dead worker's cluster rank.
	Rank int
	// PEs are the global PE indices the dead worker owned.
	PEs []int
	// Reason classifies the detection: "connection closed" (EOF — the
	// process exited or was killed), "connection error" (reset/refused
	// — a severed link), or "exit" (a nonzero exit status was reaped
	// first).
	Reason string
	// Err is the underlying transport error, if any.
	Err error
}

func (e *ProcessDeathError) Error() string {
	s := fmt.Sprintf("cluster: worker rank %d died (%s)", e.Rank, e.Reason)
	if len(e.PEs) > 0 {
		s += fmt.Sprintf("; its PEs %v are unreachable", e.PEs)
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the transport error to errors.Is/As.
func (e *ProcessDeathError) Unwrap() error { return e.Err }

// Counts are the injector's tallies of what it actually injected.
type Counts struct {
	Panics int64
	Drops  int64
	Delays int64
	Stalls int64
}

// Injector applies a Plan at runtime. All methods are safe for
// concurrent use and are nil-check-only on the hot path when no
// injector is configured (the backends guard every hook with
// `if inj != nil`).
type Injector struct {
	plan  *Plan
	spark atomic.Int64 // next spark index
	proc  atomic.Int64 // next process/thread index
	// edgeSeq is the per-edge message sequence counter; keyed by
	// src<<32|dst (src, dst < 2^31 in practice).
	edgeSeq [maxEdgePEs * maxEdgePEs]atomic.Int64
	wideSeq atomic.Int64 // fallback for PEs >= maxEdgePEs

	panics atomic.Int64
	drops  atomic.Int64
	delays atomic.Int64
	stalls atomic.Int64
}

const maxEdgePEs = 64

// NewInjector arms a plan. A nil or empty plan returns a non-nil
// injector that injects nothing (useful for overhead benchmarks);
// callers that want zero overhead keep the Config field nil instead.
func NewInjector(p *Plan) *Injector {
	if p == nil {
		p = &Plan{Seed: 1}
	}
	return &Injector{plan: p}
}

// Plan returns the armed plan.
func (in *Injector) Plan() *Plan { return in.plan }

// Counts returns what was injected so far.
func (in *Injector) Counts() Counts {
	return Counts{
		Panics: in.panics.Load(),
		Drops:  in.drops.Load(),
		Delays: in.delays.Load(),
		Stalls: in.stalls.Load(),
	}
}

// SparkFault advances the global spark counter and returns a non-nil
// *InjectedPanic if the plan names this spark index. The caller panics
// with the returned error.
func (in *Injector) SparkFault() *InjectedPanic {
	idx := in.spark.Add(1) - 1
	if in.plan.PanicSparks[idx] {
		in.panics.Add(1)
		return &InjectedPanic{Kind: "spark", Index: idx, Seed: in.plan.Seed}
	}
	return nil
}

// ProcFault advances the process/thread spawn counter and returns a
// non-nil *InjectedPanic if the plan names this index.
func (in *Injector) ProcFault() *InjectedPanic {
	idx := in.proc.Add(1) - 1
	if in.plan.PanicProcs[idx] {
		in.panics.Add(1)
		return &InjectedPanic{Kind: "proc", Index: idx, Seed: in.plan.Seed}
	}
	return nil
}

// MessageFate decides what happens to the next message on edge
// src→dst: Deliver, Drop, or Delay with the returned sleep. The
// decision is hash(seed, edge, per-edge seq), so each edge sees a
// deterministic decision sequence for a given seed.
func (in *Injector) MessageFate(src, dst int) (Fate, time.Duration) {
	rule := in.matchEdge(src, dst)
	if rule == nil {
		return Deliver, 0
	}
	seq := in.nextSeq(src, dst)
	if rule.DropProb > 0 && hashProb(in.plan.Seed, 0xd209, src, dst, seq) < rule.DropProb {
		in.drops.Add(1)
		return Drop, 0
	}
	if rule.DelayProb > 0 && hashProb(in.plan.Seed, 0xde1a, src, dst, seq) < rule.DelayProb {
		in.delays.Add(1)
		return Delay, rule.Delay
	}
	return Deliver, 0
}

func (in *Injector) matchEdge(src, dst int) *EdgeRule {
	for i := range in.plan.Edges {
		e := &in.plan.Edges[i]
		if (e.Src == Any || e.Src == src) && (e.Dst == Any || e.Dst == dst) {
			return e
		}
	}
	return nil
}

func (in *Injector) nextSeq(src, dst int) int64 {
	if src >= 0 && src < maxEdgePEs && dst >= 0 && dst < maxEdgePEs {
		return in.edgeSeq[src*maxEdgePEs+dst].Add(1) - 1
	}
	return in.wideSeq.Add(1) - 1
}

// StallDur returns the extra sleep the plan assigns to PE/worker id, or
// 0. The caller sleeps at its communication points. NoteStall tallies
// one applied stall.
func (in *Injector) StallDur(id int) time.Duration {
	if len(in.plan.Stall) == 0 {
		return 0
	}
	return in.plan.Stall[id]
}

// NoteStall records that one stall sleep was actually applied.
func (in *Injector) NoteStall() { in.stalls.Add(1) }

// hashProb maps (seed, tag, src, dst, seq) to a uniform float64 in
// [0,1) via a splitmix64-style finalizer.
func hashProb(seed uint64, tag uint64, src, dst int, seq int64) float64 {
	x := seed
	x ^= tag * 0x9e3779b97f4a7c15
	x = mix(x + uint64(uint32(src))*0xbf58476d1ce4e5b9)
	x = mix(x + uint64(uint32(dst))*0x94d049bb133111eb)
	x = mix(x + uint64(seq)*0x2545f4914f6cdd1d)
	return float64(x>>11) / float64(1<<53)
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// IsStructured reports whether err is one of the structured failure
// classes a chaos run may legitimately end in: an injected fault, a
// poisoned-thunk propagation, a watchdog deadlock report, or a cluster
// worker's process death. It exists so soak harnesses can classify run
// outcomes without importing every backend's error set.
func IsStructured(err error) bool {
	if err == nil {
		return false
	}
	var ip *InjectedPanic
	var de *DeadlockError
	var pd *ProcessDeathError
	return errors.As(err, &ip) || errors.As(err, &de) || errors.As(err, &pd)
}
