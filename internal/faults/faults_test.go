package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"seed=42,panic-spark=17",
		"seed=7,panic-proc=3",
		"seed=9,drop=0.1",
		"seed=9,drop=0.25@0-2",
		"seed=9,delay=2ms:0.3",
		"seed=5,delay=1ms:0.5@1-*",
		"seed=3,stall=1:5ms",
		"seed=11,panic-spark=2,panic-spark=9,drop=0.05@*-0,delay=500µs:0.2,stall=0:1ms,stall=3:2ms",
		"kill-rank=1:150ms",
		"sever-rank=2:1s",
		"seed=6,kill-rank=0:10ms,kill-rank=2:20ms,sever-rank=1:30ms",
		"flap-rank=1:40ms:150ms",
		"wedge-rank=2:25ms",
		"seed=4,kill-rank=1:10ms,rank-faults=every",
		"seed=8,flap-rank=0:5ms:50ms,flap-rank=2:1ms:2ms,wedge-rank=1:3ms",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		got := p.String()
		p2, err := Parse(got)
		if err != nil {
			t.Fatalf("Parse(String()=%q): %v", got, err)
		}
		if p2.String() != got {
			t.Errorf("round trip not stable: %q -> %q -> %q", spec, got, p2.String())
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("")
	if err != nil || p != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", p, err)
	}
	if !p.Empty() {
		t.Error("nil plan should be Empty")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"seed=x",
		"panic-spark=-1",
		"drop=1.5",
		"drop=0.1@0",
		"drop=0.1@a-b",
		"delay=0.5",         // missing duration
		"delay=banana:0.5",  // bad duration
		"delay=-1ms:0.5",    // non-positive duration
		"stall=1",           // missing duration
		"stall=x:1ms",       // bad PE
		"stall=1:0s",        // non-positive duration
		"frob=1",            // unknown clause
		"kill-rank=1",       // missing duration
		"kill-rank=x:1ms",   // bad rank
		"kill-rank=-1:1ms",  // negative rank
		"kill-rank=1:0s",    // non-positive duration
		"sever-rank=2",      // missing duration
		"sever-rank=a:5ms",  // bad rank
		"sever-rank=0:-1ms", // non-positive duration
		"flap-rank=1:5ms",       // missing outage
		"flap-rank=x:5ms:5ms",   // bad rank
		"flap-rank=1:0s:5ms",    // non-positive onset
		"flap-rank=1:5ms:0s",    // non-positive outage
		"wedge-rank=1",          // missing duration
		"wedge-rank=b:1ms",      // bad rank
		"wedge-rank=1:-2ms",     // non-positive duration
		"rank-faults=sometimes", // unknown mode
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestSparkAndProcFaults(t *testing.T) {
	p, err := Parse("seed=1,panic-spark=2,panic-proc=0")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	for i := 0; i < 5; i++ {
		f := in.SparkFault()
		if (i == 2) != (f != nil) {
			t.Errorf("spark %d: fault=%v", i, f)
		}
		if f != nil && (f.Kind != "spark" || f.Index != 2 || f.Seed != 1) {
			t.Errorf("spark fault fields: %+v", f)
		}
	}
	if f := in.ProcFault(); f == nil || f.Kind != "proc" || f.Index != 0 {
		t.Errorf("proc fault: %+v", f)
	}
	if f := in.ProcFault(); f != nil {
		t.Errorf("proc 1 should be clean, got %+v", f)
	}
	if c := in.Counts(); c.Panics != 2 {
		t.Errorf("Counts.Panics = %d, want 2", c.Panics)
	}
}

func TestMessageFateDeterministic(t *testing.T) {
	plan := &Plan{Seed: 99, Edges: []EdgeRule{{Src: Any, Dst: Any, DropProb: 0.3, DelayProb: 0.3, Delay: time.Millisecond}}}
	run := func() []Fate {
		in := NewInjector(plan)
		fates := make([]Fate, 200)
		for i := range fates {
			fates[i], _ = in.MessageFate(0, 1)
		}
		return fates
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	var drops, delays int
	for _, f := range a {
		switch f {
		case Drop:
			drops++
		case Delay:
			delays++
		}
	}
	if drops == 0 || delays == 0 {
		t.Errorf("with p=0.3 over 200 messages expected both drops (%d) and delays (%d)", drops, delays)
	}
}

func TestMessageFateSeedSensitive(t *testing.T) {
	fates := func(seed uint64) []Fate {
		in := NewInjector(&Plan{Seed: seed, Edges: []EdgeRule{{Src: Any, Dst: Any, DropProb: 0.5}}})
		out := make([]Fate, 64)
		for i := range out {
			out[i], _ = in.MessageFate(0, 1)
		}
		return out
	}
	a, b := fates(1), fates(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fate sequences")
	}
}

func TestMessageFateEdgeMatch(t *testing.T) {
	plan := &Plan{Seed: 4, Edges: []EdgeRule{{Src: 0, Dst: 2, DropProb: 1}}}
	in := NewInjector(plan)
	if f, _ := in.MessageFate(0, 2); f != Drop {
		t.Error("edge 0-2 should always drop at p=1")
	}
	if f, _ := in.MessageFate(1, 2); f != Deliver {
		t.Error("edge 1-2 should not match rule for 0-2")
	}
	if f, _ := in.MessageFate(0, 1); f != Deliver {
		t.Error("edge 0-1 should not match rule for 0-2")
	}
}

func TestStall(t *testing.T) {
	p, err := Parse("stall=2:3ms")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	if d := in.StallDur(2); d != 3*time.Millisecond {
		t.Errorf("StallDur(2) = %v", d)
	}
	if d := in.StallDur(0); d != 0 {
		t.Errorf("StallDur(0) = %v, want 0", d)
	}
	in.NoteStall()
	if c := in.Counts(); c.Stalls != 1 {
		t.Errorf("Counts.Stalls = %d", c.Stalls)
	}
}

func TestErrorTypes(t *testing.T) {
	ip := &InjectedPanic{Kind: "spark", Index: 7, Seed: 3}
	wrapped := fmt.Errorf("native: thread panic: %w", ip)
	var got *InjectedPanic
	if !errors.As(wrapped, &got) || got.Index != 7 {
		t.Error("InjectedPanic should survive %w wrapping")
	}
	if !IsStructured(wrapped) {
		t.Error("IsStructured(InjectedPanic)")
	}

	de := &DeadlockError{
		Backend: "nativeeden", Reason: "quiescence", Elapsed: time.Second,
		Blocked: []BlockedThread{{PE: 1, Thread: "recv", Reason: "channel", Chan: 4, Peer: 0}},
	}
	if !IsStructured(de) {
		t.Error("IsStructured(DeadlockError)")
	}
	msg := de.Error()
	for _, want := range []string{"deadlock", "quiescence", "PE 1", "recv", "channel #4", "from PE 0"} {
		if !contains(msg, want) {
			t.Errorf("DeadlockError message %q missing %q", msg, want)
		}
	}
	pd := &ProcessDeathError{Rank: 2, PEs: []int{4, 5}, Reason: "connection closed", Err: errors.New("EOF")}
	if !IsStructured(fmt.Errorf("cluster: %w", pd)) {
		t.Error("IsStructured(ProcessDeathError)")
	}
	pmsg := pd.Error()
	for _, want := range []string{"rank 2", "connection closed", "[4 5]", "EOF"} {
		if !contains(pmsg, want) {
			t.Errorf("ProcessDeathError message %q missing %q", pmsg, want)
		}
	}

	if IsStructured(errors.New("plain")) {
		t.Error("IsStructured(plain error) should be false")
	}
	if IsStructured(nil) {
		t.Error("IsStructured(nil) should be false")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
