package faults

import (
	"fmt"
	"time"
)

// CLIInjector builds an injector from a command's -faults/-deadline
// flag pair, validating fail-fast before any run starts: a non-empty
// spec must parse, the deadline must not be negative, and both flags
// apply only to the native runtimes (the -runtime values "native" and
// "eden"). Commands without a -runtime distinction pass "native".
// Both flags at their defaults yield a nil injector (faults disabled).
func CLIInjector(spec string, deadline time.Duration, rtKind string) (*Injector, error) {
	if spec == "" && deadline == 0 {
		return nil, nil
	}
	if rtKind != "native" && rtKind != "eden" {
		return nil, fmt.Errorf("faults: -faults/-deadline apply only to -runtime native or eden (got %q)", rtKind)
	}
	if deadline < 0 {
		return nil, fmt.Errorf("faults: -deadline must not be negative (got %v)", deadline)
	}
	if spec == "" {
		return nil, nil
	}
	plan, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return NewInjector(plan), nil
}
