package eventlog

import (
	"fmt"
	"time"
)

// DumpEvent is one event in the JSON wire form of a drained log.
// Types travel by name, not ordinal, so a dump survives event-type
// additions on either side of the wire.
type DumpEvent struct {
	T    int64  `json:"t"`
	Type string `json:"type"`
	Arg  int32  `json:"arg,omitempty"`
}

// Dump is the portable form of one job's drained event log, served by
// the compute service at /api/v1/trace and consumed by tracedump -job.
// Agents carries the display name of each buffer ("main", "w0", …) so
// the remote renderer reproduces the server-side attribution.
type Dump struct {
	TraceID  string        `json:"trace_id,omitempty"`
	Workload string        `json:"workload,omitempty"`
	Backend  string        `json:"backend,omitempty"`
	Tenant   string        `json:"tenant,omitempty"`
	Error    string        `json:"error,omitempty"`
	WallNS   int64         `json:"wall_ns"`
	Dropped  int64         `json:"dropped,omitempty"`
	Agents   []string      `json:"agents"`
	Events   [][]DumpEvent `json:"events"`
}

// Dump converts a closed log into its wire form. Call only after the
// run's termination barrier, like Events.
func (l *Log) Dump(agents []string) *Dump {
	d := &Dump{
		WallNS:  l.wallNS,
		Dropped: l.Dropped(),
		Agents:  agents,
		Events:  make([][]DumpEvent, len(l.bufs)),
	}
	for i, b := range l.bufs {
		evs := b.Events()
		out := make([]DumpEvent, len(evs))
		for j, e := range evs {
			out[j] = DumpEvent{T: e.T, Type: e.Type.String(), Arg: e.Arg}
		}
		d.Events[i] = out
	}
	return d
}

// nameToType inverts typeNames for dump reconstruction.
var nameToType = func() map[string]Type {
	m := make(map[string]Type, numTypes)
	for t, name := range typeNames {
		m[name] = Type(t)
	}
	return m
}()

// Log reconstructs an in-memory event log from the wire form, ready
// for TraceAgents and the shared renderers. Events with a type name
// this build does not know are rejected rather than misrendered.
func (d *Dump) Log() (*Log, error) {
	l := New(time.Now(), len(d.Events), Config{})
	for i, evs := range d.Events {
		b := l.bufs[i]
		for _, e := range evs {
			t, ok := nameToType[e.Type]
			if !ok {
				return nil, fmt.Errorf("eventlog: unknown event type %q in dump", e.Type)
			}
			b.append(Event{T: e.T, Arg: e.Arg, Type: t})
		}
	}
	l.Close(d.WallNS)
	return l, nil
}
