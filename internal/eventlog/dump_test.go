package eventlog

import (
	"encoding/json"
	"testing"
	"time"
)

func TestDumpRoundTrip(t *testing.T) {
	start := time.Now()
	l := New(start, 2, Config{})
	b0, b1 := l.Buf(0), l.Buf(1)
	b0.append(Event{T: 0, Type: TraceMark, Arg: 42})
	b0.append(Event{T: 10, Type: RunBegin})
	b0.append(Event{T: 50, Type: BlockBegin})
	b0.append(Event{T: 80, Type: BlockEnd})
	b0.append(Event{T: 90, Type: RunEnd})
	b1.append(Event{T: 20, Type: SparkConvert})
	b1.append(Event{T: 25, Type: RunBegin})
	b1.append(Event{T: 60, Type: RunEnd})
	l.Close(100)

	d := l.Dump([]string{"main", "w0"})
	d.TraceID = "t-42"
	d.Workload = "sumeuler"
	d.Backend = "gph"

	// The wire form must survive JSON marshalling (the actual
	// transport used by /api/v1/trace).
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	rl, err := back.Log()
	if err != nil {
		t.Fatal(err)
	}
	if rl.Workers() != 2 || rl.WallNS() != 100 {
		t.Fatalf("reconstructed shape: workers=%d wall=%d", rl.Workers(), rl.WallNS())
	}
	evs := rl.Events(0)
	if len(evs) != 5 || evs[0].Type != TraceMark || evs[0].Arg != 42 {
		t.Fatalf("buffer 0 events wrong: %+v", evs)
	}
	if got := rl.Events(1); len(got) != 3 || got[1].Type != RunBegin || got[1].T != 25 {
		t.Fatalf("buffer 1 events wrong: %+v", got)
	}

	// Reduction with explicit agent names labels the timeline rows.
	tl := rl.TraceAgents(back.Agents)
	agents := tl.Agents()
	if len(agents) != 2 || agents[0].Segments() == nil {
		t.Fatalf("trace agents: %v", agents)
	}
	names := tl.SortedAgentNames()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["main"] || !found["w0"] {
		t.Fatalf("agent names not propagated: %v", names)
	}
}

func TestDumpRejectsUnknownType(t *testing.T) {
	d := &Dump{
		Agents: []string{"main"},
		Events: [][]DumpEvent{{{T: 1, Type: "no-such-event"}}},
	}
	if _, err := d.Log(); err == nil {
		t.Fatal("unknown event type accepted")
	}
}

func TestTraceMarkName(t *testing.T) {
	if TraceMark.String() != "trace-mark" {
		t.Fatalf("TraceMark name = %q", TraceMark.String())
	}
	if nameToType["trace-mark"] != TraceMark {
		t.Fatal("trace-mark not reversible")
	}
}
