// Package eventlog is the wall-clock observability layer of the native
// work-stealing runtime: a GHC-eventlog/ThreadScope-style per-worker
// event recorder cheap enough to leave on during measurement.
//
// Design constraints (the same ones GHC's eventlog solves):
//
//   - Owner-written buffers. Each worker appends to its own Buf; no
//     other goroutine touches the events until the run is over, so the
//     hot path takes no locks and issues no atomic operations — one
//     monotonic-clock read and one slice append per event.
//   - Fixed-capacity chunks with ring wraparound. A Buf grows chunk by
//     chunk up to a cap; past the cap the oldest chunk is recycled and
//     its events are counted as dropped. Memory stays bounded on any
//     run length, and a full buffer degrades to "most recent window"
//     rather than stopping the run or stalling the worker.
//   - Drain after the barrier. Run drains the buffers only after every
//     worker has stopped (stealers.Wait), so the owner-written slices
//     are published by the WaitGroup's happens-before edge — the same
//     discipline as the simulated runtime's post-run trace close.
//
// A drained Log reduces to the existing trace.Log/Segment model
// (Trace), so the ASCII/CSV/JSON/HTML renderers draw native wall-clock
// timelines identically to the simulated EdenTV-style figures.
package eventlog

import (
	"fmt"
	"sync/atomic"
	"time"

	"parhask/internal/trace"
)

// Type identifies one native-runtime event.
type Type uint8

const (
	// SparkPush: Par pushed a spark onto this worker's pool.
	SparkPush Type = iota
	// SparkConvert: this worker took a spark and is about to force it.
	SparkConvert
	// SparkFizzle: this worker took a spark that was already evaluated.
	SparkFizzle
	// StealAttempt: a steal was tried on a non-empty victim pool (Arg =
	// victim worker id).
	StealAttempt
	// StealSuccess: the steal won its CAS (Arg = victim worker id).
	StealSuccess
	// ThunkClaim: an eager black-holing CAS claim succeeded.
	ThunkClaim
	// ThunkRelease: the claimed thunk's evaluation completed.
	ThunkRelease
	// ThunkDupEntry: a lazy-black-holing duplicate thunk entry.
	ThunkDupEntry
	// BlockBegin: a force found a black hole and started waiting.
	BlockBegin
	// BlockEnd: the awaited thunk became evaluated.
	BlockEnd
	// IdleBegin: the worker found no work anywhere and began backing off.
	IdleBegin
	// IdleEnd: work appeared (or the run ended) after an idle stretch.
	IdleEnd
	// Fork: this worker created a new GpH thread (a real goroutine).
	Fork
	// RunBegin: the worker started running mutator code (a converted
	// spark, or worker 0 entering the program's main function).
	RunBegin
	// RunEnd: the mutator stretch opened by the matching RunBegin ended.
	RunEnd
	// MsgSend: a message left this PE (Arg = destination PE). Native-Eden
	// backend only; GpH workers never emit it.
	MsgSend
	// MsgRecv: a message was delivered into this PE's heap (Arg = source
	// PE).
	MsgRecv
	// CommBegin: the PE started packing/shipping or unpacking a message;
	// the bracket renders as the Comm band in the EdenTV-style timeline.
	CommBegin
	// CommEnd: the communication stretch opened by CommBegin ended.
	CommEnd
	// MsgDrop: the fault injector discarded an outgoing message after
	// packing (Arg = destination PE).
	MsgDrop
	// FaultPanic: the fault injector panicked this worker/thread (Arg =
	// the injected spark/process index, truncated to 32 bits).
	FaultPanic
	// ThunkPoison: a dying thread poisoned a claimed thunk so blocked
	// peers fail over instead of waiting forever.
	ThunkPoison
	// WorkerDead: a supervisor observed a worker/process death (Arg =
	// the dead worker's index); recovery (re-dispatch) follows.
	WorkerDead
	// DelayBegin: the fault injector started delaying an outgoing
	// message (sender-side sleep; Arg = destination PE). Renders as a
	// Blocked band.
	DelayBegin
	// DelayEnd: the injected delay ended and the send proceeds.
	DelayEnd
	// StallBegin: the fault injector started a stall sleep on this
	// PE/worker (a "slow PE"). Renders as a Blocked band.
	StallBegin
	// StallEnd: the injected stall ended.
	StallEnd
	// TraceMark tags the ring with the service-assigned trace ID of the
	// job it records (Arg = the numeric id). Emitted once, before any
	// other worker can write, so cross-process consumers (tracedump
	// -job) can associate a drained ring with its request.
	TraceMark

	numTypes
)

var typeNames = [numTypes]string{
	SparkPush:     "spark-push",
	SparkConvert:  "spark-convert",
	SparkFizzle:   "spark-fizzle",
	StealAttempt:  "steal-attempt",
	StealSuccess:  "steal-success",
	ThunkClaim:    "thunk-claim",
	ThunkRelease:  "thunk-release",
	ThunkDupEntry: "thunk-dup-entry",
	BlockBegin:    "block-begin",
	BlockEnd:      "block-end",
	IdleBegin:     "idle-begin",
	IdleEnd:       "idle-end",
	Fork:          "fork",
	RunBegin:      "run-begin",
	RunEnd:        "run-end",
	MsgSend:       "msg-send",
	MsgRecv:       "msg-recv",
	CommBegin:     "comm-begin",
	CommEnd:       "comm-end",
	MsgDrop:       "msg-drop",
	FaultPanic:    "fault-panic",
	ThunkPoison:   "thunk-poison",
	WorkerDead:    "worker-dead",
	DelayBegin:    "delay-begin",
	DelayEnd:      "delay-end",
	StallBegin:    "stall-begin",
	StallEnd:      "stall-end",
	TraceMark:     "trace-mark",
}

// String returns the event type's name.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("eventlog.Type(%d)", uint8(t))
}

// Event is one recorded occurrence: 16 bytes, value-copied into the
// owner's chunk with no per-event allocation.
type Event struct {
	// T is the event time in nanoseconds since the run started, from the
	// monotonic clock (so it never goes backwards within a worker).
	T int64
	// Arg is event-specific: the victim worker id for steal events,
	// zero otherwise.
	Arg int32
	// Type says what happened.
	Type Type
}

// Config tunes the per-worker buffers; the zero value selects defaults.
type Config struct {
	// ChunkEvents is the number of events per fixed-capacity chunk
	// (default 2048).
	ChunkEvents int
	// MaxChunks caps how many chunks one worker may hold before the ring
	// wraps and the oldest chunk is dropped (default 64 — about 2 MiB of
	// events per worker at the default chunk size).
	MaxChunks int
}

// DefaultChunkEvents and DefaultMaxChunks are the Config defaults.
const (
	DefaultChunkEvents = 2048
	DefaultMaxChunks   = 64
)

func (c Config) withDefaults() Config {
	if c.ChunkEvents <= 0 {
		c.ChunkEvents = DefaultChunkEvents
	}
	if c.MaxChunks <= 0 {
		c.MaxChunks = DefaultMaxChunks
	}
	return c
}

// chunk is one fixed-capacity run of events.
type chunk struct {
	ev []Event // len grows to cap(ChunkEvents), then a new chunk starts
}

// Buf is one worker's event buffer. Only the owning worker may call
// Emit/EmitArg; readers must wait for the run's termination barrier
// (eventlog draining is a post-mortem operation by design).
type Buf struct {
	start  time.Time
	cfg    Config
	cur    *chunk
	chunks []*chunk // oldest to newest; cur == chunks[len-1]
	// drops counts events lost to ring wraparound. The owner is the only
	// writer (on wrap, a rare event), but observers may read it live via
	// Dropped while the worker is still emitting — a plain int64 there is
	// a data race — so the counter is atomic. The hot path (append with
	// no wrap) still performs no atomic operations.
	drops atomic.Int64
}

// Emit records an event of type t, stamped now.
func (b *Buf) Emit(t Type) { b.EmitArg(t, 0) }

// EmitArg records an event of type t with an argument, stamped now.
func (b *Buf) EmitArg(t Type, arg int32) {
	b.append(Event{T: int64(time.Since(b.start)), Arg: arg, Type: t})
}

// append stores e, growing or wrapping the chunk ring as needed.
func (b *Buf) append(e Event) {
	c := b.cur
	if len(c.ev) == cap(c.ev) {
		c = b.grow()
	}
	c.ev = append(c.ev, e)
}

// grow returns a fresh current chunk: a new allocation while under the
// chunk cap, otherwise the recycled oldest chunk (ring wraparound), so a
// saturated buffer keeps the most recent window without allocating.
func (b *Buf) grow() *chunk {
	if len(b.chunks) < b.cfg.MaxChunks {
		c := &chunk{ev: make([]Event, 0, b.cfg.ChunkEvents)}
		b.chunks = append(b.chunks, c)
		b.cur = c
		return c
	}
	oldest := b.chunks[0]
	b.drops.Add(int64(len(oldest.ev)))
	copy(b.chunks, b.chunks[1:])
	oldest.ev = oldest.ev[:0]
	b.chunks[len(b.chunks)-1] = oldest
	b.cur = oldest
	return oldest
}

// Events returns the buffered events oldest-first. Call only after the
// owner has stopped emitting (post-run).
func (b *Buf) Events() []Event {
	n := 0
	for _, c := range b.chunks {
		n += len(c.ev)
	}
	out := make([]Event, 0, n)
	for _, c := range b.chunks {
		out = append(out, c.ev...)
	}
	return out
}

// Len returns the number of buffered (non-dropped) events.
func (b *Buf) Len() int {
	n := 0
	for _, c := range b.chunks {
		n += len(c.ev)
	}
	return n
}

// Dropped returns how many events ring wraparound discarded. Unlike
// Events and Len it is safe to call while the owner is still emitting.
func (b *Buf) Dropped() int64 { return b.drops.Load() }

// Log owns the per-worker buffers of one native run.
type Log struct {
	bufs   []*Buf
	wallNS int64
}

// New creates a log with one buffer per worker. All timestamps are
// relative to start, which must be the instant the run's wall clock
// began (so event times line up with the measured wall time).
func New(start time.Time, workers int, cfg Config) *Log {
	cfg = cfg.withDefaults()
	l := &Log{bufs: make([]*Buf, workers)}
	for i := range l.bufs {
		c := &chunk{ev: make([]Event, 0, cfg.ChunkEvents)}
		l.bufs[i] = &Buf{start: start, cfg: cfg, cur: c, chunks: []*chunk{c}}
	}
	return l
}

// Buf returns worker i's buffer.
func (l *Log) Buf(i int) *Buf { return l.bufs[i] }

// Workers returns the number of per-worker buffers.
func (l *Log) Workers() int { return len(l.bufs) }

// Close records the run's final wall-clock time. Call after every
// worker has stopped emitting.
func (l *Log) Close(wallNS int64) { l.wallNS = wallNS }

// WallNS returns the wall-clock time recorded by Close.
func (l *Log) WallNS() int64 { return l.wallNS }

// Events returns worker i's events oldest-first (post-run only).
func (l *Log) Events(i int) []Event { return l.bufs[i].Events() }

// Dropped returns the total events lost to ring wraparound. Safe to
// call while workers are still emitting.
func (l *Log) Dropped() int64 {
	var n int64
	for _, b := range l.bufs {
		n += b.drops.Load()
	}
	return n
}

// Trace reduces the event stream into the shared trace.Log/Segment
// model, one agent per worker, so the native run renders through the
// same ASCII/CSV/JSON/HTML exporters as the simulated EdenTV figures.
// Times are wall-clock nanoseconds.
//
// The reduction is a per-worker state stack: Run/Block/Idle begin
// events push the corresponding trace state, end events pop back to
// whatever the bracket interrupted. Worker 0's base state is Idle (its
// main function is bracketed by explicit Run events); stealing workers'
// base is Runnable — between brackets they are scanning pools for work,
// the paper's yellow "system work" band.
func (l *Log) Trace() *trace.Log { return l.TraceNamed("w") }

// TraceNamed is Trace with a caller-chosen agent-name prefix: "w" gives
// the GpH worker timelines ("w0", "w1", …), "pe" the native-Eden PE
// timelines ("pe0", "pe1", …).
func (l *Log) TraceNamed(prefix string) *trace.Log {
	names := make([]string, len(l.bufs))
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return l.TraceAgents(names)
}

// TraceAgents is the reduction with explicit per-buffer agent names
// (one per buffer; missing names fall back to "agentN"). Per-job trace
// rings use it to label buffer 0 "main" and the rest after the workers
// that wrote them.
func (l *Log) TraceAgents(names []string) *trace.Log {
	tl := trace.NewLog()
	for i, b := range l.bufs {
		name := fmt.Sprintf("agent%d", i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		base := trace.Runnable
		if i == 0 {
			base = trace.Idle
		}
		r := trace.NewStackReducer(tl.NewAgent(name), base)
		for _, e := range b.Events() {
			switch e.Type {
			case RunBegin:
				r.Push(e.T, trace.Run)
			case BlockBegin:
				r.Push(e.T, trace.Blocked)
			case IdleBegin:
				r.Push(e.T, trace.Idle)
			case CommBegin:
				r.Push(e.T, trace.Comm)
			case DelayBegin, StallBegin:
				// Injected waits render as Blocked bands: the thread is
				// losing wall time it did not ask to lose. The point
				// events (MsgDrop, FaultPanic, …) stay in the raw log.
				r.Push(e.T, trace.Blocked)
			case RunEnd, BlockEnd, IdleEnd, CommEnd, DelayEnd, StallEnd:
				r.Pop(e.T)
			}
		}
	}
	tl.Close(l.wallNS)
	return tl
}
