package eventlog

import (
	"sync"
	"testing"
	"time"

	"parhask/internal/trace"
)

// at builds an event with a fixed timestamp, bypassing the clock so
// reduction tests are deterministic.
func at(t Type, ns int64) Event { return Event{T: ns, Type: t} }

func newTestLog(workers, chunkEvents, maxChunks int) *Log {
	return New(time.Now(), workers, Config{ChunkEvents: chunkEvents, MaxChunks: maxChunks})
}

func TestBufChunkGrowth(t *testing.T) {
	// A buffer fills chunk after chunk without dropping anything while
	// under the chunk cap, and Events returns everything in emit order.
	l := newTestLog(1, 4, 8) // capacity 32 events
	b := l.Buf(0)
	const n = 30
	for i := 0; i < n; i++ {
		b.append(at(SparkPush, int64(i)))
	}
	if b.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", b.Dropped())
	}
	evs := b.Events()
	if len(evs) != n {
		t.Fatalf("len(events) = %d, want %d", len(evs), n)
	}
	for i, e := range evs {
		if e.T != int64(i) {
			t.Fatalf("event %d has T=%d, want %d (order not preserved)", i, e.T, i)
		}
	}
	if b.Len() != n {
		t.Fatalf("Len = %d, want %d", b.Len(), n)
	}
}

func TestBufWraparound(t *testing.T) {
	// Past the chunk cap the ring recycles its oldest chunk: the buffer
	// keeps the most recent window, counts the discarded events, and
	// preserves order within the kept window.
	const chunkEvents, maxChunks = 4, 3 // capacity 12
	l := newTestLog(1, chunkEvents, maxChunks)
	b := l.Buf(0)
	const n = 31
	for i := 0; i < n; i++ {
		b.append(at(StealAttempt, int64(i)))
	}
	evs := b.Events()
	if len(evs)+int(b.Dropped()) != n {
		t.Fatalf("kept %d + dropped %d != emitted %d", len(evs), b.Dropped(), n)
	}
	if b.Dropped() == 0 {
		t.Fatal("expected wraparound to drop events")
	}
	// Kept events are the newest, contiguous, in order.
	first := evs[0].T
	for i, e := range evs {
		if e.T != first+int64(i) {
			t.Fatalf("kept window not contiguous at %d: T=%d, want %d", i, e.T, first+int64(i))
		}
	}
	if last := evs[len(evs)-1].T; last != n-1 {
		t.Fatalf("newest kept event T=%d, want %d", last, n-1)
	}
	// The ring never holds more than maxChunks*chunkEvents events.
	if len(evs) > chunkEvents*maxChunks {
		t.Fatalf("kept %d events, ring capacity is %d", len(evs), chunkEvents*maxChunks)
	}
	if l.Dropped() != b.Dropped() {
		t.Fatalf("log dropped %d != buf dropped %d", l.Dropped(), b.Dropped())
	}
}

func TestBufWraparoundRecyclesAllocation(t *testing.T) {
	// After the ring is full, emitting steadily must not allocate new
	// chunks (the oldest is recycled in place).
	l := newTestLog(1, 4, 2)
	b := l.Buf(0)
	for i := 0; i < 100; i++ {
		b.append(at(SparkPush, int64(i)))
	}
	if got := len(b.chunks); got != 2 {
		t.Fatalf("chunks = %d, want 2 (ring must not grow past the cap)", got)
	}
}

func TestTraceReduction(t *testing.T) {
	// A hand-built event stream must reduce to the exact segment
	// timeline: worker 0 runs main, blocks on a thunk, helps by running
	// a spark while blocked, unblocks, finishes. Worker 1 idles, then
	// converts a spark.
	l := newTestLog(2, DefaultChunkEvents, DefaultMaxChunks)
	w0, w1 := l.Buf(0), l.Buf(1)
	for _, e := range []Event{
		at(RunBegin, 10), // main starts
		at(BlockBegin, 30),
		at(RunBegin, 40), // helping under the blocked force
		at(RunEnd, 60),
		at(BlockEnd, 70),
		at(RunEnd, 100), // main returns
	} {
		w0.append(e)
	}
	for _, e := range []Event{
		at(IdleBegin, 5),
		at(IdleEnd, 40),
		at(SparkConvert, 40),
		at(RunBegin, 40),
		at(RunEnd, 90),
	} {
		w1.append(e)
	}
	l.Close(100)

	tl := l.Trace()
	if tl.End() != 100 {
		t.Fatalf("trace end = %d, want 100", tl.End())
	}
	agents := tl.Agents()
	if len(agents) != 2 {
		t.Fatalf("agents = %d, want 2", len(agents))
	}
	wantW0 := []trace.Segment{
		{State: trace.Idle, From: 0, To: 10},
		{State: trace.Run, From: 10, To: 30},
		{State: trace.Blocked, From: 30, To: 40},
		{State: trace.Run, From: 40, To: 60},
		{State: trace.Blocked, From: 60, To: 70},
		{State: trace.Run, From: 70, To: 100},
	}
	wantW1 := []trace.Segment{
		{State: trace.Runnable, From: 0, To: 5},
		{State: trace.Idle, From: 5, To: 40},
		{State: trace.Run, From: 40, To: 90},
		{State: trace.Runnable, From: 90, To: 100},
	}
	for i, want := range [][]trace.Segment{wantW0, wantW1} {
		got := agents[i].Segments()
		if len(got) != len(want) {
			t.Fatalf("w%d: %d segments, want %d: %+v", i, len(got), len(want), got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("w%d segment %d = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

func TestTraceReductionSurvivesTruncatedStream(t *testing.T) {
	// Wraparound can drop a bracket's Begin while keeping its End; the
	// reducer must degrade to the base state, not panic.
	l := newTestLog(1, DefaultChunkEvents, DefaultMaxChunks)
	b := l.Buf(0)
	b.append(at(RunEnd, 10))   // orphan End (Begin dropped)
	b.append(at(BlockEnd, 20)) // another orphan
	b.append(at(RunBegin, 30))
	b.append(at(RunEnd, 40))
	l.Close(50)
	tl := l.Trace()
	a := tl.Agents()[0]
	if got := a.TimeIn(trace.Run); got != 10 {
		t.Fatalf("run time = %d, want 10", got)
	}
	if got := a.TimeIn(trace.Idle); got != 40 {
		t.Fatalf("idle time = %d, want 40 (orphan Ends must land on the base state)", got)
	}
}

func TestEmitTimestampsMonotonic(t *testing.T) {
	l := New(time.Now(), 1, Config{})
	b := l.Buf(0)
	for i := 0; i < 1000; i++ {
		b.Emit(SparkPush)
	}
	evs := b.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatalf("timestamps went backwards at %d: %d < %d", i, evs[i].T, evs[i-1].T)
		}
	}
}

func TestConcurrentOwnersRace(t *testing.T) {
	// Each buffer has exactly one owner, but all owners emit at the same
	// time — the -race guarantee the hot path depends on (no sharing
	// between per-worker rings). Run under `go test -race`.
	const workers, events = 8, 5000
	l := New(time.Now(), workers, Config{ChunkEvents: 64, MaxChunks: 4})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(b *Buf) {
			defer wg.Done()
			for j := 0; j < events; j++ {
				b.EmitArg(StealAttempt, int32(j))
			}
		}(l.Buf(i))
	}
	wg.Wait()
	l.Close(int64(time.Millisecond))
	for i := 0; i < workers; i++ {
		if got := l.Buf(i).Len() + int(l.Buf(i).Dropped()); got != events {
			t.Fatalf("worker %d: kept+dropped = %d, want %d", i, got, events)
		}
	}
	if l.Trace() == nil {
		t.Fatal("trace reduction failed")
	}
}

func TestTypeString(t *testing.T) {
	for ty := Type(0); ty < numTypes; ty++ {
		if ty.String() == "" {
			t.Fatalf("type %d has no name", ty)
		}
	}
	if got := Type(200).String(); got != "eventlog.Type(200)" {
		t.Fatalf("unknown type renders as %q", got)
	}
}

func TestDroppedReadableWhileEmitting(t *testing.T) {
	// The drop counter may be observed live (e.g. by a sampler) while the
	// owner is still wrapping the ring. Run under `go test -race`: with a
	// plain int64 counter this is a write/read race.
	l := New(time.Now(), 1, Config{ChunkEvents: 8, MaxChunks: 2})
	b := l.Buf(0)
	done := make(chan struct{})
	var observed int64
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if d := l.Dropped(); d > observed {
				observed = d
			}
		}
	}()
	for i := 0; i < 20000; i++ {
		b.Emit(SparkPush)
	}
	<-done
	if b.Dropped() == 0 {
		t.Fatal("expected wraparound drops")
	}
	if observed < 0 || observed > b.Dropped() {
		t.Fatalf("live observation %d out of range [0, %d]", observed, b.Dropped())
	}
}

func TestTraceReductionCommBrackets(t *testing.T) {
	// CommBegin/CommEnd brackets render as the Comm band, nesting over
	// the running state like the other brackets.
	l := newTestLog(1, DefaultChunkEvents, DefaultMaxChunks)
	b := l.Buf(0)
	for _, e := range []Event{
		at(RunBegin, 0),
		at(CommBegin, 20),
		at(CommEnd, 30),
		at(RunEnd, 50),
	} {
		b.append(e)
	}
	l.Close(50)
	tl := l.TraceNamed("pe")
	a := tl.Agents()[0]
	if name := a.Name; name != "pe0" {
		t.Fatalf("agent name = %q, want pe0", name)
	}
	want := []trace.Segment{
		{State: trace.Run, From: 0, To: 20},
		{State: trace.Comm, From: 20, To: 30},
		{State: trace.Run, From: 30, To: 50},
	}
	got := a.Segments()
	if len(got) != len(want) {
		t.Fatalf("%d segments, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
