package gum

import (
	"fmt"

	"parhask/internal/eden"
	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/trace"
)

// msgKind enumerates GUM's protocol messages.
type msgKind int8

const (
	// msgFish hunts for spare sparks (idle PE -> random PE, forwarded
	// up to TTL times).
	msgFish msgKind = iota
	// msgFishFail returns an unsuccessful fish to its origin.
	msgFishFail
	// msgSchedule ships a packed spark to the fisher.
	msgSchedule
	// msgFetch demands the value of a remote global address.
	msgFetch
	// msgResume delivers a fetched value.
	msgResume
)

func (k msgKind) String() string {
	switch k {
	case msgFish:
		return "FISH"
	case msgFishFail:
		return "FISHFAIL"
	case msgSchedule:
		return "SCHEDULE"
	case msgFetch:
		return "FETCH"
	case msgResume:
		return "RESUME"
	}
	return "?"
}

// message is one GUM packet.
type message struct {
	kind   msgKind
	from   int // originating PE (fish origin / fetch requester)
	ttl    int
	thunk  *graph.Thunk // home thunk (FETCH/RESUME) or shipped spark (SCHEDULE)
	remote *graph.Thunk // exported copy (FETCH)
	val    graph.Value  // fetched value (RESUME)
	bytes  int64
}

// send packs and transmits m to PE dest, charging the sender (the
// calling capability) and delivering after the transport latency.
func (r *RTS) send(c *rts.Cap, dest int, m message) {
	costs := c.Costs
	c.SetState(trace.Comm)
	c.Burn(costs.MsgFixed + int64(costs.MsgPerByte*float64(m.bytes)))
	c.SetState(trace.Runnable)
	r.stats.Messages++
	r.stats.BytesSent += m.bytes
	target := r.pes[dest]
	at := r.sim.Now() + costs.MsgLatency
	if j := costs.MsgJitter; j > 0 {
		at += int64(r.sim.Rand().Uint64() % uint64(j+1))
	}
	// Deliveries to one PE stay FIFO (a jittered message cannot overtake
	// an earlier one), as the middleware guarantees per pair.
	if at < target.arrivalFloor {
		at = target.arrivalFloor
	}
	target.arrivalFloor = at
	r.sim.After(at-r.sim.Now(), func() {
		target.mailbox = append(target.mailbox, m)
		target.cap.Wake()
	})
}

// castFish sends one FISH to a random other PE.
func (r *RTS) castFish(c *rts.Cap) {
	pe := r.pe(c)
	pe.fishing = true
	r.stats.FishSent++
	target := r.randomOtherPE(c.Index, -1)
	r.send(c, target, message{kind: msgFish, from: c.Index, ttl: r.cfg.FishTTL, bytes: 32})
}

// randomOtherPE picks a deterministic pseudo-random PE different from
// self (and from avoid, when >= 0 and possible).
func (r *RTS) randomOtherPE(self, avoid int) int {
	n := len(r.pes)
	for tries := 0; ; tries++ {
		p := r.sim.Rand().Intn(n)
		if p == self {
			continue
		}
		if p == avoid && n > 2 && tries < 8 {
			continue
		}
		return p
	}
}

// processMailbox handles every delivered message on this PE, charging
// the per-message receive cost.
func (r *RTS) processMailbox(c *rts.Cap) {
	pe := r.pe(c)
	for len(pe.mailbox) > 0 {
		m := pe.mailbox[0]
		pe.mailbox = pe.mailbox[1:]
		c.SetState(trace.Comm)
		costs := c.Costs
		c.Burn(costs.MsgFixed + int64(costs.MsgPerByte*float64(m.bytes)))
		c.SetState(trace.Runnable)
		switch m.kind {
		case msgFish:
			r.handleFish(c, m)
		case msgFishFail:
			r.handleFishFail(c)
		case msgSchedule:
			r.handleSchedule(c, m)
		case msgFetch:
			r.handleFetch(c, m)
		case msgResume:
			r.handleResume(c, m)
		default:
			panic(fmt.Sprintf("gum: unknown message %v", m.kind))
		}
	}
}

// handleFish answers a work request: export a spare spark, forward the
// fish, or return it to its origin.
func (r *RTS) handleFish(c *rts.Cap, m message) {
	pe := r.pe(c)
	for {
		t, ok := pe.pool.Steal() // export the oldest spark, as GUM does
		if !ok {
			break
		}
		if t.State() != graph.Unevaluated {
			// Evaluated (fizzled) or already claimed by a local thread:
			// not exportable.
			r.stats.SparksFizzled++
			continue
		}
		// Export: ship a packed copy; the home copy becomes a FetchMe
		// (black-holed so local touchers block and fetch on demand).
		clone := t.CloneForExport()
		t.MarkBlackhole()
		r.git.export(t, clone, m.from)
		r.stats.GlobalsCreated++
		r.stats.SparksExported++
		r.stats.Schedules++
		r.send(c, m.from, message{
			kind:  msgSchedule,
			from:  c.Index,
			thunk: clone,
			bytes: r.cfg.PackedClosureBytes,
		})
		return
	}
	if m.ttl > 0 {
		r.stats.FishForwarded++
		target := r.randomOtherPE(c.Index, m.from)
		r.send(c, target, message{kind: msgFish, from: m.from, ttl: m.ttl - 1, bytes: 32})
		return
	}
	r.stats.FishFailed++
	r.send(c, m.from, message{kind: msgFishFail, from: c.Index, bytes: 32})
}

// handleFishFail backs off before fishing again.
func (r *RTS) handleFishFail(c *rts.Cap) {
	pe := r.pe(c)
	r.sim.After(r.cfg.FishDelay, func() {
		pe.fishing = false
		pe.cap.Wake()
	})
}

// handleSchedule installs a shipped spark into the local pool.
func (r *RTS) handleSchedule(c *rts.Cap, m message) {
	pe := r.pe(c)
	pe.fishing = false
	pe.pool.PushBottom(m.thunk)
}

// handleFetch answers a demand for an exported value: reply immediately
// if it is ready, otherwise force it in a system thread that replies on
// completion (GUM's demand-driven data pull).
func (r *RTS) handleFetch(c *rts.Cap, m message) {
	home, remote, requester := m.thunk, m.remote, m.from
	if remote.IsEvaluated() {
		v := remote.Value()
		r.stats.Resumes++
		r.send(c, requester, message{
			kind: msgResume, from: c.Index, thunk: home, val: v,
			bytes: 48 + eden.SizeOf(v),
		})
		return
	}
	c.SpawnThread(fmt.Sprintf("fetch-pe%d", c.Index), func(ctx *rts.Ctx) {
		v := ctx.Force(remote)
		r.stats.Resumes++
		r.send(ctx.Cap(), requester, message{
			kind: msgResume, from: ctx.Cap().Index, thunk: home, val: v,
			bytes: 48 + eden.SizeOf(v),
		})
	})
}

// handleResume overwrites the local FetchMe with the fetched value,
// wakes everything blocked on it, and returns the global address's
// weight.
func (r *RTS) handleResume(c *rts.Cap, m message) {
	if !m.thunk.IsEvaluated() {
		ws := m.thunk.Resolve(m.val)
		c.WakeWaiterList(ws)
	}
	r.git.returnWeight(m.thunk)
}
