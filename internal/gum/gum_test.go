package gum

import (
	"testing"

	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/strategies"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

func runG(t *testing.T, cfg Config, main func(*rts.Ctx) graph.Value) *Result {
	t.Helper()
	res, err := Run(cfg, main)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// chunkMain is the standard synthetic GpH workload (identical to the
// one the shared-heap tests use — same programming model).
func chunkMain(n int, burn, alloc int64) func(*rts.Ctx) graph.Value {
	return func(ctx *rts.Ctx) graph.Value {
		ts := make([]*graph.Thunk, n)
		for i := 0; i < n; i++ {
			ts[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value {
				c.Alloc(alloc)
				c.Burn(burn)
				return 1
			})
		}
		strategies.ParListWHNF(ctx, ts)
		sum := 0
		for _, t := range ts {
			sum += ctx.Force(t).(int)
		}
		return sum
	}
}

func TestMainOnlySequential(t *testing.T) {
	res := runG(t, NewConfig(4, 4), func(ctx *rts.Ctx) graph.Value {
		ctx.Burn(2_000_000)
		return 5
	})
	if res.Value != 5 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.Schedules != 0 {
		t.Fatal("nothing to schedule in a sequential program")
	}
}

func TestFishingDistributesSparks(t *testing.T) {
	res := runG(t, NewConfig(4, 4), chunkMain(32, 2_000_000, 128*1024))
	if res.Value != 32 {
		t.Fatalf("value = %v, want 32", res.Value)
	}
	if res.Stats.FishSent == 0 {
		t.Fatal("idle PEs never fished")
	}
	if res.Stats.Schedules == 0 {
		t.Fatal("no sparks were exported despite idle PEs")
	}
}

func TestFetchResumeRoundTrip(t *testing.T) {
	// Main sparks a thunk, waits for it to be fished away, then forces
	// it: that must block on the FetchMe and pull the value back.
	res := runG(t, NewConfig(2, 2), func(ctx *rts.Ctx) graph.Value {
		th := strategies.Thunk(func(c *rts.Ctx) graph.Value {
			c.Alloc(16 * 1024)
			c.Burn(4_000_000)
			return 99
		})
		ctx.Par(th)
		// Keep allocating while we wait so our PE reaches heap checks
		// and serves PE1's FISH (GUM processes messages at scheduler
		// return points).
		for i := 0; i < 8; i++ {
			ctx.Alloc(16 * 1024)
			ctx.Burn(250_000)
		}
		return ctx.Force(th)
	})
	if res.Value != 99 {
		t.Fatalf("value = %v, want 99", res.Value)
	}
	if res.Stats.SparksExported == 0 {
		t.Fatal("spark was not exported")
	}
	if res.Stats.Fetches == 0 || res.Stats.Resumes == 0 {
		t.Fatalf("fetch/resume protocol not exercised: %+v", res.Stats)
	}
}

func TestGpHProgramPortability(t *testing.T) {
	// The identical sumEuler program source runs on GUM.
	const n = 800
	cfg := NewConfig(4, 4)
	res := runG(t, cfg, euler.GpHProgram(n, 16, cfg.Costs.GCDIter))
	if res.Value != euler.SumTotientSieve(n) {
		t.Fatalf("value = %v, want %d", res.Value, euler.SumTotientSieve(n))
	}
}

func TestSpeedup(t *testing.T) {
	const n = 2000
	cfg1 := NewConfig(1, 1)
	r1 := runG(t, cfg1, euler.GpHProgram(n, 32, cfg1.Costs.GCDIter))
	cfg8 := NewConfig(8, 8)
	r8 := runG(t, cfg8, euler.GpHProgram(n, 32, cfg8.Costs.GCDIter))
	sp := float64(r1.Elapsed) / float64(r8.Elapsed)
	if sp < 3 {
		t.Fatalf("speedup = %.2f (t1=%d t8=%d), want >= 3", sp, r1.Elapsed, r8.Elapsed)
	}
}

func TestMatMulOnGUM(t *testing.T) {
	const n, bs = 32, 8
	a, b := matmul.Random(n, 7), matmul.Random(n, 8)
	want := matmul.MulOracle(a, b)
	cfg := NewConfig(4, 4)
	cfg.ResidentBytesPerPE = matmul.Bytes(n)
	res := runG(t, cfg, matmul.GpHBlockProgram(a, b, bs, cfg.Costs.MulAdd))
	if !matmul.Equal(res.Value.(matmul.Mat), want, 1e-9) {
		t.Fatal("GUM matmul product incorrect")
	}
}

func TestWeightedReferenceCounting(t *testing.T) {
	res := runG(t, NewConfig(4, 4), chunkMain(24, 1_500_000, 64*1024))
	if res.Value != 24 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.GlobalsCreated == 0 {
		t.Fatal("no global addresses created")
	}
	// Every fetched global must eventually return its weight.
	if res.Stats.WeightReturned > res.Stats.GlobalsCreated {
		t.Fatalf("returned %d weights for %d globals", res.Stats.WeightReturned, res.Stats.GlobalsCreated)
	}
	if res.Stats.Fetches > 0 && res.Stats.WeightReturned == 0 {
		t.Fatal("fetched values never returned weight")
	}
}

func TestFishTTLForwarding(t *testing.T) {
	// Many PEs, work only on PE0: fish from far PEs get forwarded.
	cfg := NewConfig(8, 8)
	cfg.FishTTL = 3
	res := runG(t, cfg, chunkMain(48, 1_000_000, 64*1024))
	if res.Value != 48 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.FishForwarded == 0 {
		t.Fatal("no fish was ever forwarded")
	}
}

func TestFishFailBackoff(t *testing.T) {
	// Sequential program: every fish fails; the runtime must neither
	// deadlock nor storm (fishing is rate-limited by FishDelay).
	cfg := NewConfig(4, 4)
	cfg.FishDelay = 500_000
	res := runG(t, cfg, func(ctx *rts.Ctx) graph.Value {
		ctx.Burn(10_000_000)
		return 1
	})
	if res.Stats.FishFailed == 0 {
		t.Fatal("expected failed fishes in a sequential program")
	}
	// 10ms runtime, 3 idle PEs, >=0.5ms between casts per PE: bounded.
	if res.Stats.FishSent > 3*25 {
		t.Fatalf("fish storm: %d fishes in 10ms", res.Stats.FishSent)
	}
}

func TestDeterminismGUM(t *testing.T) {
	cfg := NewConfig(4, 4)
	a := runG(t, cfg, chunkMain(20, 800_000, 64*1024))
	b := runG(t, cfg, chunkMain(20, 800_000, 64*1024))
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Fatalf("nondeterministic: %d vs %d\n%+v\n%+v", a.Elapsed, b.Elapsed, a.Stats, b.Stats)
	}
}

func TestLocalGCsIndependent(t *testing.T) {
	res := runG(t, NewConfig(4, 4), chunkMain(16, 500_000, 4*1024*1024))
	if res.Stats.LocalGCs == 0 {
		t.Fatal("no local GCs despite heavy allocation")
	}
}

func TestSharedLatticeAcrossPEs(t *testing.T) {
	// A dependency chain whose links get exported: forcing the head
	// exercises chained fetch-on-block behaviour.
	res := runG(t, NewConfig(3, 3), func(ctx *rts.Ctx) graph.Value {
		prev := graph.NewValue(0)
		for i := 0; i < 12; i++ {
			p := prev
			next := strategies.Thunk(func(c *rts.Ctx) graph.Value {
				v := c.Force(p).(int)
				c.Alloc(8 * 1024)
				c.Burn(600_000)
				return v + 1
			})
			ctx.Par(next)
			prev = next
		}
		ctx.Burn(1_000_000)
		return ctx.Force(prev)
	})
	if res.Value != 12 {
		t.Fatalf("value = %v, want 12", res.Value)
	}
}

func TestJitteredTransportStillCorrect(t *testing.T) {
	cfg := NewConfig(4, 4)
	cfg.Costs.MsgJitter = 300_000
	res := runG(t, cfg, chunkMain(24, 900_000, 64*1024))
	if res.Value != 24 {
		t.Fatalf("value = %v", res.Value)
	}
	a := runG(t, cfg, chunkMain(24, 900_000, 64*1024))
	if a.Elapsed != res.Elapsed {
		t.Fatal("jittered GUM runs must stay deterministic")
	}
}
