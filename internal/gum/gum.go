// Package gum implements GUM — the distributed-memory implementation of
// GpH (Trinder et al., PLDI'96) that the paper describes in §III-B as
// the historical sibling of Eden's runtime: each PE runs a sequential
// runtime with a private heap; work is distributed *passively* by
// "fishing" (an idle PE sends a FISH message hunting for spare sparks,
// and a loaded PE replies by SCHEDULEing a packed spark to it); a
// virtual shared memory is maintained through global addresses, with
// FETCH/RESUME messages pulling remote values on demand; and weighted
// reference counting supports global garbage collection while local
// collections stay independent.
//
// Because GUM exposes exactly the GpH programming model (par + forcing),
// the very same programs that run on the shared-heap runtime (package
// gph) run unmodified here — sumEuler's GpHProgram, the blockwise matrix
// multiplication, etc. — which is the paper's point about the two
// implementation families sharing one programming model.
//
// Simplification (documented per DESIGN.md): GUM packs a subgraph around
// an exported spark and lazily fetches what was left behind. Here the
// exported closure's *pure inputs* are reachable directly (as if packed
// whole, charged by packet size), while the exported thunk itself gets
// the full global-address treatment: the home PE keeps a FetchMe, and
// touching it triggers the FETCH/RESUME protocol.
package gum

import (
	"fmt"

	"parhask/internal/cost"
	"parhask/internal/deque"
	"parhask/internal/graph"
	"parhask/internal/machine"
	"parhask/internal/rts"
	"parhask/internal/sim"
	"parhask/internal/trace"
)

// Config selects a GUM runtime setup.
type Config struct {
	// PEs is the number of processing elements.
	PEs int
	// Cores is the number of physical cores of the simulated machine.
	Cores int
	// Costs is the virtual cost model.
	Costs cost.Model
	// AllocArea is the per-PE allocation area; 0 selects the default.
	AllocArea int64
	// ResidentBytesPerPE is the baseline long-lived heap per PE.
	ResidentBytesPerPE int64
	// EagerBlackholing selects the intra-PE black-holing policy.
	EagerBlackholing bool
	// FishDelay is how long an unlucky fisher waits before casting
	// again (GUM's back-off against fish storms).
	FishDelay int64
	// FishTTL is how many times a FISH is forwarded before giving up.
	FishTTL int
	// SparkPoolCap bounds each PE's spark pool.
	SparkPoolCap int
	// PackedClosureBytes approximates the packet size of one exported
	// spark's subgraph.
	PackedClosureBytes int64
	// Seed for the deterministic PRNG (fishing targets).
	Seed uint64
}

// NewConfig returns a GUM configuration with pes PEs on cores cores.
func NewConfig(pes, cores int) Config {
	return Config{
		PEs:                pes,
		Cores:              cores,
		Costs:              cost.Default(),
		FishDelay:          300_000, // 300 µs
		FishTTL:            2,
		SparkPoolCap:       4096,
		PackedClosureBytes: 512,
		Seed:               1,
	}
}

func (c *Config) allocArea() int64 {
	if c.AllocArea > 0 {
		return c.AllocArea
	}
	return c.Costs.AllocAreaDefault
}

// Stats aggregates counters over one GUM run.
type Stats struct {
	SparksCreated  int
	SparksExported int // shipped in SCHEDULE messages
	SparksFizzled  int
	FishSent       int
	FishForwarded  int
	FishFailed     int // returned empty-handed
	Schedules      int
	Fetches        int
	Resumes        int
	GlobalsCreated int // global addresses issued
	WeightReturned int // weights fully returned (GIT entries freed)
	Messages       int
	BytesSent      int64
	LocalGCs       int
	MajorGCs       int
	GCTime         int64
	ThreadsCreated int
	BlockedOnThunk int
	DupEntries     int
	TotalAlloc     int64
}

// Result is the outcome of one GUM run.
type Result struct {
	Elapsed sim.Time
	Value   graph.Value
	Stats   Stats
	Trace   *trace.Log
}

// peState is one GUM processing element.
type peState struct {
	cap        *rts.Cap
	pool       *deque.Deque[graph.Thunk]
	mailbox    []message
	fishing    bool // a FISH from this PE is in flight
	idle       bool
	resident   int64
	gcCount    int
	lastSwitch sim.Time
	lastThread *rts.Thread
	// arrivalFloor is the latest scheduled arrival at this PE, keeping
	// deliveries FIFO under latency jitter.
	arrivalFloor sim.Time
}

// RTS is a running GUM instance; it implements rts.System for all PEs.
type RTS struct {
	cfg   Config
	sim   *sim.Sim
	cpu   *machine.CPU
	log   *trace.Log
	pes   []*peState
	git   *globalTable
	stats Stats

	liveThreads int
	shutdown    bool
	mainDone    sim.Time
	mainValue   graph.Value
}

var _ rts.System = (*RTS)(nil)

// Run executes main as the root GpH thread on PE 0. The main function
// has the exact same type as for the shared-heap runtime (gph.Run), so
// GpH programs are portable between the two implementations.
func Run(cfg Config, main func(*rts.Ctx) graph.Value) (*Result, error) {
	if cfg.PEs <= 0 || cfg.Cores <= 0 {
		return nil, fmt.Errorf("gum: invalid configuration PEs=%d cores=%d", cfg.PEs, cfg.Cores)
	}
	s := sim.New(cfg.Seed + 0x6155_f15b)
	r := &RTS{
		cfg: cfg,
		sim: s,
		cpu: machine.New(s, cfg.Cores),
		log: trace.NewLog(),
		git: newGlobalTable(),
	}
	costs := cfg.Costs
	for i := 0; i < cfg.PEs; i++ {
		agent := r.log.NewAgent(fmt.Sprintf("pe%d", i))
		c := rts.NewCap(i, r, r.cpu, &costs, agent)
		r.pes = append(r.pes, &peState{
			cap:      c,
			pool:     deque.New[graph.Thunk](),
			resident: cfg.ResidentBytesPerPE,
		})
	}
	mainThread := r.pes[0].cap.NewThread("main", func(ctx *rts.Ctx) {
		r.mainValue = main(ctx)
		r.mainDone = ctx.Now()
		r.shutdown = true
		r.wakeAllPEs()
	})
	r.pes[0].cap.Enqueue(mainThread)
	for _, pe := range r.pes {
		pe.cap.Start(s)
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("gum: %w", err)
	}
	r.log.Close(r.mainDone)
	for _, pe := range r.pes {
		r.stats.TotalAlloc += pe.cap.TotalAlloc
	}
	r.stats.WeightReturned = r.git.freed
	return &Result{
		Elapsed: r.mainDone,
		Value:   r.mainValue,
		Stats:   r.stats,
		Trace:   r.log,
	}, nil
}

func (r *RTS) pe(c *rts.Cap) *peState { return r.pes[c.Index] }

func (r *RTS) wakeAllPEs() {
	for _, pe := range r.pes {
		pe.cap.Wake()
	}
}

// --- rts.System implementation ---

// EagerBlackholing reports the intra-PE black-holing policy.
func (r *RTS) EagerBlackholing() bool { return r.cfg.EagerBlackholing }

// NoteDuplicate counts duplicate thunk entries.
func (r *RTS) NoteDuplicate(t *graph.Thunk) { r.stats.DupEntries++ }

// Spark implements par: push onto the local PE's spark pool. Unlike the
// shared-heap runtime nothing is signalled — distribution is passive,
// driven by other PEs' fishing.
func (r *RTS) Spark(c *rts.Cap, th *rts.Thread, t *graph.Thunk) {
	pe := r.pe(c)
	c.Burn(c.Costs.SparkPush)
	if t.IsEvaluated() {
		r.stats.SparksFizzled++
		return
	}
	if pe.pool.Size() >= r.cfg.SparkPoolCap {
		return
	}
	pe.pool.PushBottom(t)
	r.stats.SparksCreated++
}

// ThreadCreated tracks live threads.
func (r *RTS) ThreadCreated(c *rts.Cap, th *rts.Thread) {
	r.liveThreads++
	r.stats.ThreadsCreated++
}

// ThreadDone handles thread termination.
func (r *RTS) ThreadDone(c *rts.Cap, th *rts.Thread) {
	r.liveThreads--
	if r.shutdown && r.liveThreads == 0 {
		r.wakeAllPEs()
	}
}

// ThreadBlocked fires the demand-driven FETCH protocol when a thread
// blocks on a FetchMe (a thunk whose evaluation lives on another PE).
func (r *RTS) ThreadBlocked(c *rts.Cap, th *rts.Thread, on *graph.Thunk) {
	r.stats.BlockedOnThunk++
	if on == nil {
		return
	}
	if ga, ok := r.git.lookup(on); ok && ga.owner != c.Index && !ga.fetchInFlight {
		ga.fetchInFlight = true
		r.stats.Fetches++
		r.send(c, ga.owner, message{
			kind: msgFetch, thunk: on, remote: ga.remote, from: c.Index, bytes: 48,
		})
	}
}

// FindWork is a GUM PE's idle loop: deliver messages, run threads,
// activate local sparks, otherwise go fishing.
func (r *RTS) FindWork(c *rts.Cap) *rts.Thread {
	pe := r.pe(c)
	for {
		r.processMailbox(c)
		if th := c.TryDequeue(); th != nil {
			return th
		}
		if r.shutdown && r.liveThreads == 0 {
			return nil
		}
		if t := r.getLocalSpark(c); t != nil {
			c.Burn(c.Costs.ThreadCreate)
			return c.NewThread(fmt.Sprintf("spark-pe%d", c.Index), func(ctx *rts.Ctx) {
				ctx.Force(t)
			})
		}
		// Nothing local: fish for work (one FISH in flight at a time).
		if !pe.fishing && !r.shutdown && len(r.pes) > 1 {
			r.castFish(c)
		}
		// The spark hunt and the FISH send burned virtual time; wakes
		// that arrived during those burns were absorbed. Re-check every
		// park condition (no yields below) before committing.
		if len(pe.mailbox) > 0 || c.RunQLen() > 0 ||
			(r.shutdown && r.liveThreads == 0) {
			continue
		}
		pe.idle = true
		if c.BlockedCount > 0 {
			c.SetState(trace.Blocked)
		} else {
			c.SetState(trace.Idle)
		}
		c.Task.Park()
		pe.idle = false
		c.SetState(trace.Runnable)
	}
}

// getLocalSpark pops a useful spark from the local pool.
func (r *RTS) getLocalSpark(c *rts.Cap) *graph.Thunk {
	pe := r.pe(c)
	for {
		t, ok := pe.pool.PopBottom()
		if !ok {
			return nil
		}
		c.Burn(c.Costs.SparkPop)
		if t.IsEvaluated() {
			r.stats.SparksFizzled++
			continue
		}
		return t
	}
}

// HeapBoundary: deliver messages, local GC, timeslice.
func (r *RTS) HeapBoundary(c *rts.Cap, th *rts.Thread) bool {
	pe := r.pe(c)
	if pe.lastThread != th {
		pe.lastThread = th
		pe.lastSwitch = c.Now()
	}
	r.processMailbox(c)
	if c.AllocInArea >= r.cfg.allocArea() {
		r.localGC(c, th)
		c.SetState(trace.Run)
	}
	if c.Now()-pe.lastSwitch >= c.Costs.Timeslice {
		pe.lastSwitch = c.Now()
		if c.RunQLen() > 0 {
			return true
		}
	}
	return false
}

// localGC collects one PE's private heap independently. Globally
// addressed nodes (the GIT) are roots and survive; weighted reference
// counting reclaims their entries without any global pause.
func (r *RTS) localGC(c *rts.Cap, th *rts.Thread) {
	if th != nil {
		th.MarkEntered()
	}
	pe := r.pe(c)
	c.SetState(trace.GC)
	costs := c.Costs
	live := int64(float64(c.AllocSinceGC) * costs.SurvivalRate)
	live += int64(r.git.countOwnedBy(c.Index)) * r.cfg.PackedClosureBytes
	r.stats.LocalGCs++
	pe.gcCount++
	if costs.MajorGCEvery > 0 && pe.gcCount%costs.MajorGCEvery == 0 {
		live += pe.resident
		r.stats.MajorGCs++
	}
	gcCost := costs.GCFixed + int64(costs.GCPerLiveByte*float64(live))
	start := c.Now()
	c.Burn(gcCost)
	r.stats.GCTime += c.Now() - start
	c.AllocInArea = 0
	c.AllocSinceGC = 0
	// Weighted-reference-count sweep: entries whose weight fully
	// returned are freed locally, no synchronisation required.
	r.git.sweep(c.Index)
}
