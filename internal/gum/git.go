package gum

import "parhask/internal/graph"

// maxWeight is the initial weight of a global address (weighted
// reference counting: copies of a GA carry parts of the weight; when
// the full weight has returned to the owning entry it can be reclaimed
// without any global synchronisation — the "well-understood general
// concept" the paper cites for GUM's global GC).
const maxWeight = 1 << 16

// ga is one global-address entry: the home thunk (now a FetchMe), the
// exported copy being evaluated remotely, and the owning PE.
type ga struct {
	home          *graph.Thunk
	remote        *graph.Thunk
	owner         int // PE evaluating the exported copy
	weight        int // outstanding weight (0 => reclaimable)
	fetchInFlight bool
	dead          bool
}

// globalTable is the global indirection table (GIT).
type globalTable struct {
	entries map[*graph.Thunk]*ga // keyed by home thunk
	created int
	freed   int
}

func newGlobalTable() *globalTable {
	return &globalTable{entries: make(map[*graph.Thunk]*ga)}
}

// export registers a new global address for a spark shipped from its
// home heap to PE owner.
func (g *globalTable) export(home, remote *graph.Thunk, owner int) *ga {
	e := &ga{home: home, remote: remote, owner: owner, weight: maxWeight}
	g.entries[home] = e
	g.created++
	return e
}

// lookup finds the entry for a home thunk.
func (g *globalTable) lookup(home *graph.Thunk) (*ga, bool) {
	e, ok := g.entries[home]
	if !ok || e.dead {
		return nil, false
	}
	return e, true
}

// returnWeight hands the full weight back (the remote value arrived and
// the home thunk was overwritten); the entry becomes reclaimable.
func (g *globalTable) returnWeight(home *graph.Thunk) {
	if e, ok := g.entries[home]; ok && !e.dead {
		e.weight = 0
		e.dead = true
		g.freed++
	}
}

// countOwnedBy returns how many live entries point at PE owner — the
// extra roots a local collection must retain.
func (g *globalTable) countOwnedBy(owner int) int {
	n := 0
	for _, e := range g.entries {
		if !e.dead && e.owner == owner {
			n++
		}
	}
	return n
}

// sweep drops reclaimed entries whose remote copy lives on PE owner —
// done during that PE's local GC, with no global pause.
func (g *globalTable) sweep(owner int) {
	for k, e := range g.entries {
		if e.dead && e.owner == owner {
			delete(g.entries, k)
		}
	}
}

// live returns the number of live entries (for tests).
func (g *globalTable) live() int {
	n := 0
	for _, e := range g.entries {
		if !e.dead {
			n++
		}
	}
	return n
}
