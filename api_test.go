package parhask_test

import (
	"errors"
	"os"
	"testing"
	"time"

	"parhask"
)

// These tests exercise the public facade exactly as a downstream user
// would: only identifiers exported from the parhask package.

// TestMain lets the cluster facade test re-execute this binary as its
// worker processes, exactly as a downstream main() would.
func TestMain(m *testing.M) {
	parhask.ClusterMaybeWorker()
	os.Exit(m.Run())
}

func TestFacadeClusterSupervised(t *testing.T) {
	cfg := parhask.ClusterConfig{
		Procs: 2, PerProc: 1, Transport: "tcp",
		Spec:     "sumeuler?n=2000&chunks=4",
		Faults:   "kill-rank=1:20ms",
		Restart:  &parhask.ClusterRestart{Max: 2, Backoff: 20 * time.Millisecond},
		Deadline: 60 * time.Second,
	}
	res, err := parhask.ClusterRunSupervised(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, oracle, err := parhask.ClusterBuildProgram(cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle(res.Value); err != nil {
		t.Fatalf("recovered value fails the oracle: %v", err)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", res.Restarts)
	}

	// The unsupervised entry point surfaces the same death structurally.
	cfg.Restart = nil
	if _, err := parhask.ClusterRun(cfg); err == nil {
		t.Fatal("unsupervised kill should fail")
	} else {
		var pd *parhask.ProcessDeathError
		if !errors.As(err, &pd) || pd.Rank != 1 {
			t.Fatalf("want ProcessDeathError for rank 1, got %v", err)
		}
	}
}

func TestFacadeGpHRoundTrip(t *testing.T) {
	cfg := parhask.GpHWorkStealing(4)
	res, err := parhask.RunGpH(cfg, func(ctx *parhask.Ctx) parhask.Value {
		ts := make([]*parhask.Thunk, 8)
		for i := range ts {
			i := i
			ts[i] = parhask.NewStratThunk(func(c *parhask.Ctx) parhask.Value {
				c.Alloc(32 << 10)
				c.Burn(500_000)
				return i
			})
		}
		parhask.ParListWHNF(ctx, ts)
		sum := 0
		for _, th := range ts {
			sum += ctx.Force(th).(int)
		}
		return sum
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 28 {
		t.Fatalf("value = %v, want 28", res.Value)
	}
	if res.Stats.SparksCreated != 8 {
		t.Fatalf("sparks = %d", res.Stats.SparksCreated)
	}
}

func TestFacadeEdenRoundTrip(t *testing.T) {
	cfg := parhask.NewEdenConfig(4, 4)
	res, err := parhask.RunEden(cfg, func(p parhask.PCtx) parhask.Value {
		outs := parhask.ParMap(p, "sq", func(w parhask.PCtx, in parhask.Value) parhask.Value {
			w.Burn(100_000)
			n := in.(int)
			return n * n
		}, []parhask.Value{1, 2, 3, 4})
		sum := 0
		for _, v := range outs {
			sum += v.(int)
		}
		return sum
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 30 {
		t.Fatalf("value = %v, want 30", res.Value)
	}
}

func TestFacadeVariantConstructors(t *testing.T) {
	for _, mk := range []func(int) parhask.GpHConfig{
		parhask.GpHPlainGHC69,
		parhask.GpHBigAllocArea,
		parhask.GpHImprovedSync,
		parhask.GpHWorkStealing,
		parhask.NewGpHConfig,
	} {
		cfg := mk(2)
		if cfg.Cores != 2 {
			t.Fatal("constructor ignored core count")
		}
		res, err := parhask.RunGpH(cfg, func(ctx *parhask.Ctx) parhask.Value {
			ctx.Burn(1000)
			return "ok"
		})
		if err != nil || res.Value != "ok" {
			t.Fatalf("run failed: %v %v", err, res)
		}
	}
}

func TestFacadeCostModel(t *testing.T) {
	m := parhask.DefaultCosts()
	if m.GCDIter <= 0 {
		t.Fatal("bad default cost model")
	}
	cfg := parhask.GpHWorkStealing(2)
	cfg.Costs = m
	cfg.Costs.Timeslice = 1_000_000 // user-tweaked model compiles & runs
	if _, err := parhask.RunGpH(cfg, func(ctx *parhask.Ctx) parhask.Value {
		ctx.Burn(10_000)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeChannelsAndStreams(t *testing.T) {
	cfg := parhask.NewEdenConfig(2, 2)
	res, err := parhask.RunEden(cfg, func(p parhask.PCtx) parhask.Value {
		sin, sout := p.NewStream(0)
		p.Spawn(1, "gen", func(w parhask.PCtx) {
			for i := 0; i < 5; i++ {
				w.StreamSend(sout, i)
			}
			w.StreamClose(sout)
		})
		sum := 0
		for {
			v, ok := p.StreamRecv(sin)
			if !ok {
				break
			}
			sum += v.(int)
		}
		return sum
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 10 {
		t.Fatalf("value = %v, want 10", res.Value)
	}
}

func TestFacadeMasterWorker(t *testing.T) {
	cfg := parhask.NewEdenConfig(4, 4)
	res, err := parhask.RunEden(cfg, func(p parhask.PCtx) parhask.Value {
		tasks := []parhask.Value{1, 2, 3, 4, 5}
		out := parhask.MasterWorker(p, "mw", 2, 1,
			func(w parhask.PCtx, task parhask.Value) ([]parhask.Value, parhask.Value) {
				w.Burn(50_000)
				return nil, task.(int) * 2
			}, tasks)
		sum := 0
		for _, v := range out {
			sum += v.(int)
		}
		return sum
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 30 {
		t.Fatalf("value = %v, want 30", res.Value)
	}
}
