// Ring pipeline example: all-pairs shortest paths with Floyd–Warshall
// pivot rows pipelined around an Eden process ring, compared against
// the GpH shared-heap version under both black-holing policies — the
// paper's Fig. 5 in miniature.
//
//	go run ./examples/apspring
package main

import (
	"fmt"
	"log"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/trace"
	"parhask/internal/workloads/apsp"
)

func main() {
	const n = 200
	const cores = 8

	g := apsp.RandomGraph(n, 7, 9, 25)
	oracle := apsp.FloydWarshall(g)

	// Eden: ring of 8 processes, pivot rows pipelined.
	edenCfg := eden.NewConfig(cores+1, cores)
	edenRes, err := eden.Run(edenCfg, apsp.EdenRingProgram(g, cores, edenCfg.Costs.MinPlus))
	if err != nil {
		log.Fatal(err)
	}
	if !apsp.Equal(edenRes.Value.(apsp.Graph), oracle) {
		log.Fatal("eden ring: wrong distances")
	}
	fmt.Printf("Eden ring (%d nodes):        %8s virtual, %d messages\n",
		cores, trace.FmtDur(edenRes.Elapsed), edenRes.Stats.Messages)

	// GpH: the shared thunk lattice, lazy vs. eager black-holing.
	for _, eager := range []bool{false, true} {
		cfg := gph.WorkStealingConfig(cores)
		cfg.EagerBlackholing = eager
		cfg.ResidentBytes = 2 * apsp.Bytes(n)
		res, err := gph.Run(cfg, apsp.GpHProgram(g, cfg.Costs.MinPlus))
		if err != nil {
			log.Fatal(err)
		}
		if !apsp.Equal(res.Value.(apsp.Graph), oracle) {
			log.Fatal("gph: wrong distances")
		}
		name := "lazy  blackholing"
		if eager {
			name = "eager blackholing"
		}
		fmt.Printf("GpH work stealing, %s: %8s virtual, %6d duplicate thunk entries, %d threads blocked\n",
			name, trace.FmtDur(res.Elapsed), res.Stats.DupEntries, res.Stats.BlockedOnThunk)
	}
	fmt.Println("\nThe shared pivot rows make lazy black-holing catastrophic: every")
	fmt.Println("thread that reaches an unmarked pivot re-evaluates it (wasted work),")
	fmt.Println("while eager black-holing turns those entries into blocking + wakeup.")
}
