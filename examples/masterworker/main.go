// Master-worker example: an irregular, dynamically growing bag of tasks
// processed by the masterWorker skeleton — here an adaptive numerical
// integration where intervals that look rough are split into subtasks
// at runtime (the paper notes the skeleton supports exactly this kind
// of backtracking/branch-and-bound workload).
//
//	go run ./examples/masterworker
package main

import (
	"fmt"
	"log"
	"math"

	"parhask/internal/eden"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/skel"
	"parhask/internal/trace"
)

// interval is one integration task.
type interval struct {
	Lo, Hi float64
}

// PackedSize implements eden.Sized.
func (iv interval) PackedSize() int64 { return 32 }

// f is the integrand: nasty around x=0.1 so adaptive refinement kicks in.
func f(x float64) float64 { return math.Sin(1/(x+0.1)) + 1 }

// simpson computes the Simpson estimate over [lo, hi].
func simpson(lo, hi float64) float64 {
	m := (lo + hi) / 2
	return (hi - lo) / 6 * (f(lo) + 4*f(m) + f(hi))
}

func main() {
	const cores = 8
	cfg := eden.NewConfig(cores, cores)
	res, err := eden.Run(cfg, func(p pe.Ctx) graph.Value {
		initial := make([]graph.Value, 16)
		for i := range initial {
			initial[i] = interval{Lo: float64(i) / 16, Hi: float64(i+1) / 16}
		}
		parts := skel.MasterWorker(p, "quad", cores-1, 2,
			func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
				iv := task.(interval)
				w.Alloc(4 * 1024)
				w.Burn(150_000) // per-estimate cost
				whole := simpson(iv.Lo, iv.Hi)
				m := (iv.Lo + iv.Hi) / 2
				halves := simpson(iv.Lo, m) + simpson(m, iv.Hi)
				if math.Abs(whole-halves) > 1e-7 && iv.Hi-iv.Lo > 1e-5 {
					// Too rough: split into two new tasks, contribute nothing.
					return []graph.Value{interval{iv.Lo, m}, interval{m, iv.Hi}}, 0.0
				}
				return nil, halves
			}, initial)
		total := 0.0
		for _, v := range parts {
			total += v.(float64)
		}
		return total
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive integral over [0,1] = %.8f\n", res.Value)
	fmt.Printf("virtual runtime = %s; %d tasks processed across %d workers; %d messages\n",
		trace.FmtDur(res.Elapsed), res.Stats.Messages/2, cores-1, res.Stats.Messages)
	fmt.Print(res.Trace.Render(72))
}
