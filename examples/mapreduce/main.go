// Map-reduce example: the paper's sumEuler computation written twice —
// once with GpH evaluation strategies (split the input, parList the
// chunk sums) and once with Eden's Google-style parMapReduce skeleton —
// plus a word-count-like multi-key parMapReduce to show real key
// grouping.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/skel"
	"parhask/internal/trace"
	"parhask/internal/workloads/euler"
)

func main() {
	const n = 5000
	const cores = 8

	// GpH: sum (map phi [1..n]) with chunked parList strategies.
	gphCfg := gph.WorkStealingConfig(cores)
	gphRes, err := gph.Run(gphCfg, euler.GpHProgram(n, 64, gphCfg.Costs.GCDIter))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GpH  sumEuler(%d) = %v   (%s virtual)\n", n, gphRes.Value, trace.FmtDur(gphRes.Elapsed))

	// Eden: the ready-made parMapReduce skeleton.
	edenCfg := eden.NewConfig(cores, cores)
	edenRes, err := eden.Run(edenCfg, euler.EdenProgram(n, 8, edenCfg.Costs.GCDIter))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eden sumEuler(%d) = %v   (%s virtual)\n", n, edenRes.Value, trace.FmtDur(edenRes.Elapsed))
	fmt.Printf("sieve oracle       = %v\n\n", euler.SumTotientSieve(n))

	// Multi-key map-reduce: classify k by φ(k) mod 4 and count each class.
	classRes, err := eden.Run(edenCfg, func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, 2000)
		for i := range inputs {
			inputs[i] = i + 1
		}
		kvs := skel.ParMapReduce(p, "classify",
			func(w pe.Ctx, in graph.Value) []skel.KV {
				k := in.(int)
				phi := euler.Phi(w, edenCfg.Costs.GCDIter, k)
				return []skel.KV{{Key: phi % 4, Val: 1}}
			},
			func(w pe.Ctx, key graph.Value, vals []graph.Value) graph.Value {
				s := 0
				for _, v := range vals {
					s += v.(int)
				}
				return s
			}, inputs)
		out := map[int]int{}
		for _, kv := range kvs {
			out[kv.Key.(int)] = kv.Val.(int)
		}
		return fmt.Sprintf("%v", out)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counts of phi(k) mod 4 for k<=2000: %v\n", classRes.Value)
}
