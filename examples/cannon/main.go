// Cannon's algorithm example: multiply two matrices on a q×q Eden
// process torus, showing how a topology skeleton captures the parallel
// interaction structure, and how virtual PEs (more processes than
// cores) behave.
//
//	go run ./examples/cannon
package main

import (
	"fmt"
	"log"

	"parhask/internal/eden"
	"parhask/internal/trace"
	"parhask/internal/workloads/matmul"
)

func main() {
	const n = 240
	const cores = 8

	a := matmul.Random(n, 1)
	b := matmul.Random(n, 2)
	oracle := matmul.MulOracle(a, b)

	for _, setup := range []struct {
		q, pes int
	}{
		{2, 5},  // 4 workers + master, under-using 8 cores
		{3, 9},  // 9 virtual PEs on 8 cores (paper Fig. 4 d)
		{4, 17}, // 17 virtual PEs on 8 cores (paper Fig. 4 e)
	} {
		cfg := eden.NewConfig(setup.pes, cores)
		res, err := eden.Run(cfg, matmul.EdenCannonProgram(a, b, setup.q, cfg.Costs.MulAdd))
		if err != nil {
			log.Fatal(err)
		}
		if !matmul.Equal(res.Value.(matmul.Mat), oracle, 1e-6) {
			log.Fatalf("q=%d: wrong product", setup.q)
		}
		fmt.Printf("%dx%d torus on %2d virtual PEs / %d cores: %8s virtual, %4d messages, %.1f MB sent, %d local GCs\n",
			setup.q, setup.q, setup.pes, cores, trace.FmtDur(res.Elapsed),
			res.Stats.Messages, float64(res.Stats.BytesSent)/1e6, res.Stats.LocalGCs)
	}
	fmt.Println("\nAll products verified against the sequential oracle.")
	fmt.Println("Note how 17 virtual PEs on 8 cores holds its own: smaller per-PE")
	fmt.Println("heaps collect faster and the OS-style fair timeslicing keeps all")
	fmt.Println("cores busy — the paper's surprising Fig. 4 observation.")
}
