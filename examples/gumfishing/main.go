// GUM fishing example: the *same* GpH program (par-sparked chunks) runs
// on three runtime organisations — the paper's shared heap, the
// distributed-memory GUM runtime with its FISH/SCHEDULE/FETCH/RESUME
// protocol, and the §VI future-work semi-distributed heap — showing the
// tradeoffs §VI-A discusses: communication cost vs. GC synchronisation.
//
//	go run ./examples/gumfishing
package main

import (
	"fmt"
	"log"

	"parhask"
	"parhask/internal/trace"
)

// program is a portable GpH computation: 64 sparked chunks.
func program(ctx *parhask.Ctx) parhask.Value {
	ts := make([]*parhask.Thunk, 64)
	for i := range ts {
		i := i
		ts[i] = parhask.NewStratThunk(func(c *parhask.Ctx) parhask.Value {
			c.Alloc(4 << 20) // allocation-heavy: real GC pressure
			c.Burn(int64(1_500_000 + 400_000*(i%5)))
			return 1
		})
	}
	parhask.ParListWHNF(ctx, ts)
	sum := 0
	for _, t := range ts {
		sum += ctx.Force(t).(int)
	}
	return sum
}

func main() {
	const cores = 8

	shared, err := parhask.RunGpH(parhask.GpHWorkStealing(cores), program)
	if err != nil {
		log.Fatal(err)
	}
	localh, err := parhask.RunGpH(parhask.GpHLocalHeaps(cores), program)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := parhask.RunGUM(parhask.NewGUMConfig(cores, cores), program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The same GpH program (64 sparked chunks, heavy allocation) on three")
	fmt.Println("runtime organisations, 8 cores:")
	fmt.Printf("  shared heap (work stealing):   %8s  %3d stop-the-world GCs\n",
		trace.FmtDur(shared.Elapsed), shared.Stats.GCs)
	fmt.Printf("  semi-distributed heap (§VI):   %8s  %3d global GCs + %d barrier-free local GCs\n",
		trace.FmtDur(localh.Elapsed), localh.Stats.GCs, localh.Stats.LocalGCs)
	fmt.Printf("  GUM distributed heaps:         %8s  %3d local GCs, no barrier at all\n",
		trace.FmtDur(dist.Elapsed), dist.Stats.LocalGCs)
	fmt.Println()
	fmt.Printf("GUM protocol traffic: %d FISH (%d forwarded, %d failed), %d SCHEDULE,\n",
		dist.Stats.FishSent, dist.Stats.FishForwarded, dist.Stats.FishFailed, dist.Stats.Schedules)
	fmt.Printf("%d FETCH / %d RESUME; %d global addresses, %d weights returned.\n",
		dist.Stats.Fetches, dist.Stats.Resumes, dist.Stats.GlobalsCreated, dist.Stats.WeightReturned)
	fmt.Println()
	fmt.Println("This is §VI-A's tradeoff in numbers: the shared heap has zero")
	fmt.Println("communication cost but pays GC synchronisation; the distributed")
	fmt.Println("heaps collect independently but pay messages for work and data.")

	if shared.Value != 64 || dist.Value != 64 || localh.Value != 64 {
		log.Fatalf("result mismatch: %v %v %v", shared.Value, dist.Value, localh.Value)
	}
}
