// Quickstart: run the same parallel map on both runtime models — GpH
// sparks on a shared heap and an Eden process farm on distributed heaps
// — and compare runtimes and traces.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/skel"
	"parhask/internal/strategies"
)

// workItem is a pretend computation: burn some virtual CPU, allocate
// some heap, return a number.
func workItem(ctx interface {
	Burn(int64)
	Alloc(int64)
}, i int) int {
	ctx.Alloc(64 * 1024)
	ctx.Burn(int64(2_000_000 + 500_000*(i%5))) // 2–4 ms, irregular
	return i * i
}

func main() {
	const items = 32
	const cores = 8

	// --- GpH: spark one thunk per item with parList, then fold. ---
	gphCfg := gph.WorkStealingConfig(cores)
	gphRes, err := gph.Run(gphCfg, func(ctx *rts.Ctx) graph.Value {
		thunks := make([]*graph.Thunk, items)
		for i := 0; i < items; i++ {
			i := i
			thunks[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value {
				return workItem(c, i)
			})
		}
		strategies.ParListWHNF(ctx, thunks) // par each element
		sum := 0
		for _, t := range thunks {
			sum += ctx.Force(t).(int)
		}
		return sum
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Eden: the parMap skeleton spawns one process per item. ---
	edenCfg := eden.NewConfig(cores, cores)
	edenRes, err := eden.Run(edenCfg, func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, items)
		for i := range inputs {
			inputs[i] = i
		}
		outs := skel.ParMap(p, "sq", func(w pe.Ctx, in graph.Value) graph.Value {
			return workItem(w, in.(int))
		}, inputs)
		sum := 0
		for _, v := range outs {
			sum += v.(int)
		}
		return sum
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GpH  (shared heap, work stealing): sum=%v in %.2f ms virtual; %d sparks, %d steals\n",
		gphRes.Value, float64(gphRes.Elapsed)/1e6, gphRes.Stats.SparksCreated, gphRes.Stats.Steals)
	fmt.Printf("Eden (distributed heaps, messages): sum=%v in %.2f ms virtual; %d processes, %d messages\n",
		edenRes.Value, float64(edenRes.Elapsed)/1e6, edenRes.Stats.Processes, edenRes.Stats.Messages)
	fmt.Println("\nGpH trace:")
	fmt.Print(gphRes.Trace.Render(72))
	fmt.Println("\nEden trace:")
	fmt.Print(edenRes.Trace.Render(72))
}
