// Mandelbrot example: the classic irregular workload rendered three
// ways — sequentially, with GpH row sparks, and with Eden's
// masterWorker farm — plus the picture itself, because why not.
//
//	go run ./examples/mandelbrot
package main

import (
	"fmt"
	"log"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/trace"
	"parhask/internal/workloads/mandel"
)

func main() {
	const cores = 8
	p := mandel.DefaultParams(200, 120)

	seq, err := gph.Run(gph.WorkStealingConfig(1), func(ctx *rts.Ctx) graph.Value {
		return mandel.Render(ctx, p)
	})
	if err != nil {
		log.Fatal(err)
	}
	gphRes, err := gph.Run(gph.WorkStealingConfig(cores), mandel.GpHProgram(p))
	if err != nil {
		log.Fatal(err)
	}
	edenRes, err := eden.Run(eden.NewConfig(cores, cores), mandel.EdenProgram(p, cores-1, 2))
	if err != nil {
		log.Fatal(err)
	}

	img := seq.Value.([][]int32)
	if !mandel.Equal(img, gphRes.Value.([][]int32)) || !mandel.Equal(img, edenRes.Value.([][]int32)) {
		log.Fatal("parallel renders differ from sequential")
	}

	small := mandel.DefaultParams(78, 24)
	fmt.Print(mandel.ASCII(mandel.Render(&nop{}, small), small.MaxIter))
	fmt.Println()
	fmt.Printf("%dx%d render, %d max iterations, on %d cores:\n", p.Width, p.Height, p.MaxIter, cores)
	fmt.Printf("  sequential:             %8s\n", trace.FmtDur(seq.Elapsed))
	fmt.Printf("  GpH row sparks:         %8s  (%.1fx, %d steals)\n",
		trace.FmtDur(gphRes.Elapsed), float64(seq.Elapsed)/float64(gphRes.Elapsed), gphRes.Stats.Steals)
	fmt.Printf("  Eden masterWorker farm: %8s  (%.1fx, %d messages)\n",
		trace.FmtDur(edenRes.Elapsed), float64(seq.Elapsed)/float64(edenRes.Elapsed), edenRes.Stats.Messages)
}

// nop satisfies mandel.Ctx for the cost-free ASCII render.
type nop struct{}

func (*nop) Burn(int64)  {}
func (*nop) Alloc(int64) {}
