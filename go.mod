module parhask

go 1.22
